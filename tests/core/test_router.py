"""Unit tests for the top-level LengthMatchingRouter."""

import math

import pytest

from repro.core import LengthMatchingRouter, RouterConfig
from repro.drc import check_board
from repro.geometry import Point, Polyline, rectangle
from repro.model import Board, DesignRules, DifferentialPair, MatchGroup, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def board_with_traces(lengths, pitch=20.0) -> Board:
    board = Board.with_rect_outline(-10, -15, 130, pitch * len(lengths) + 15, RULES)
    group = MatchGroup("g")
    for k, length in enumerate(lengths):
        t = board.add_trace(
            Trace(f"t{k}", Polyline([Point(0, k * pitch), Point(length, k * pitch)]), width=1.0)
        )
        group.add(t)
    board.add_group(group)
    return board


class TestGroupMatching:
    def test_matches_to_longest(self):
        board = board_with_traces([80.0, 100.0, 90.0])
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert report.target == 100.0
        assert report.max_error() <= 1e-5

    def test_explicit_target(self):
        board = board_with_traces([80.0, 100.0])
        board.groups[0].target_length = 120.0
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert all(
            math.isclose(m.length_after, 120.0, abs_tol=1e-3) for m in report.members
        )

    def test_board_updated(self):
        board = board_with_traces([80.0, 100.0])
        LengthMatchingRouter(board).match_group(board.groups[0])
        assert math.isclose(board.trace_by_name("t0").length(), 100.0, abs_tol=1e-3)

    def test_result_drc_clean(self):
        board = board_with_traces([80.0, 95.0, 100.0])
        LengthMatchingRouter(board).match_group(board.groups[0])
        assert check_board(board).is_clean()

    def test_match_all(self):
        board = board_with_traces([80.0, 100.0])
        reports = LengthMatchingRouter(board).match_all()
        assert len(reports) == 1

    def test_initial_error_metrics(self):
        board = board_with_traces([80.0, 100.0])
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert math.isclose(report.initial_max_error(), 0.2)
        assert math.isclose(report.initial_avg_error(), 0.1)

    def test_member_reports_populated(self):
        board = board_with_traces([80.0, 100.0])
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        m = report.members[0]
        assert m.kind == "trace" and m.runtime >= 0 and m.patterns > 0

    def test_match_single_trace_by_name(self):
        board = board_with_traces([80.0])
        report = LengthMatchingRouter(board).match_trace("t0", 110.0)
        assert math.isclose(report.length_after, 110.0, abs_tol=1e-3)


class TestEmptyGroupReport:
    """Regression: error metrics on a memberless report must not raise."""

    def test_empty_report_errors_are_zero(self):
        from repro.core import GroupReport

        report = GroupReport(group="empty", target=100.0)
        assert report.max_error() == 0.0
        assert report.avg_error() == 0.0
        assert report.initial_max_error() == 0.0
        assert report.initial_avg_error() == 0.0


class TestMemberObserver:
    def test_on_member_called_per_member(self):
        board = board_with_traces([80.0, 100.0, 90.0])
        seen = []
        LengthMatchingRouter(board).match_group(
            board.groups[0], on_member=lambda m: seen.append(m.name)
        )
        assert seen == ["t0", "t1", "t2"]


class TestSequentialAwareness:
    def test_members_avoid_each_other(self):
        # Tight pitch: the first trace's meanders consume shared space and
        # the second must still clear them.
        board = board_with_traces([70.0, 100.0], pitch=14.0)
        LengthMatchingRouter(board).match_group(board.groups[0])
        assert check_board(board).is_clean()


class TestPairMatching:
    def make_pair_board(self):
        board = Board.with_rect_outline(-10, -30, 130, 30, RULES)
        p = Trace("d_P", Polyline([Point(0, 1.0), Point(100, 1.0)]), width=0.6)
        n = Trace("d_N", Polyline([Point(0, -1.0), Point(100, -1.0)]), width=0.6)
        pair = board.add_pair(DifferentialPair("d", p, n, rule=2.0))
        group = MatchGroup("g", members=[pair], target_length=130.0)
        board.add_group(group)
        return board, pair

    def test_pair_reaches_target(self):
        board, _ = self.make_pair_board()
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        m = report.members[0]
        assert m.kind == "pair"
        assert math.isclose(m.length_after, 130.0, abs_tol=1e-3)

    def test_pair_endpoints_preserved(self):
        board, pair = self.make_pair_board()
        starts = (pair.trace_p.start, pair.trace_n.start)
        LengthMatchingRouter(board).match_group(board.groups[0])
        new_pair = board.pairs[0]
        assert new_pair.trace_p.start.almost_equals(starts[0], 1e-6)
        assert new_pair.trace_n.start.almost_equals(starts[1], 1e-6)

    def test_pair_skew_compensated(self):
        board, _ = self.make_pair_board()
        LengthMatchingRouter(board).match_group(board.groups[0])
        assert board.pairs[0].skew() <= 1e-6

    def test_pair_gap_preserved(self):
        board, _ = self.make_pair_board()
        LengthMatchingRouter(board).match_group(board.groups[0])
        new_pair = board.pairs[0]
        gaps = new_pair.coupling_gaps(samples=60)
        # Straights hold the rule exactly; at right-angle corners the
        # outer curve's corner measures up to rule * sqrt(2) to the inner.
        assert min(gaps) >= 2.0 - 1e-6
        assert max(gaps) <= 2.0 * math.sqrt(2.0) + 1e-6
        straight_gaps = [g for g in gaps if abs(g - 2.0) < 1e-6]
        assert len(straight_gaps) > len(gaps) * 0.6

    def test_match_single_pair_by_name(self):
        board, _ = self.make_pair_board()
        report = LengthMatchingRouter(board).match_pair("d", 125.0)
        assert math.isclose(report.length_after, 125.0, abs_tol=1e-3)

    def test_compensation_can_be_disabled(self):
        board, _ = self.make_pair_board()
        cfg = RouterConfig(compensate_pairs=False)
        LengthMatchingRouter(board, cfg).match_group(board.groups[0])
        # Straight pair with patterns only: offsets are symmetric, so skew
        # stays zero even without compensation.
        assert board.pairs[0].skew() <= 1e-6
