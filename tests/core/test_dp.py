"""Unit tests for the segment DP (Eqs. 5-8, transit restoration).

Hand-computable instances: free space (gains are exact multiples of the
capped height), a single blocking obstacle, node feet, the p_local
connection, and the priority tie-breaks.
"""

import math

import pytest

from repro.core import DPConfig, SegmentDP, ShrinkEnvironment
from repro.geometry import Polygon, rectangle


def make_dp(
    n=21,
    step=1.0,
    k_gap=4,
    k_protect=2,
    w_min=2,
    h_min=2.0,
    h_init=5.0,
    g=2.0,
    polys=(),
    allow_node_feet=True,
    max_width_steps=None,
):
    cfg = DPConfig(
        step=step,
        n=n,
        k_gap=k_gap,
        k_protect=k_protect,
        w_min=w_min,
        h_min=h_min,
        h_init=h_init,
        g=g,
        allow_node_feet=allow_node_feet,
        max_width_steps=max_width_steps,
    )
    envs = {
        1: ShrinkEnvironment(list(polys)),
        -1: ShrinkEnvironment([Polygon([p for p in poly.points]) for poly in polys]),
    }
    return SegmentDP(cfg, envs)


class TestFreeSpace:
    def test_positive_gain(self):
        result = make_dp().run()
        assert result.gain > 0

    def test_gain_counts_patterns(self):
        result = make_dp().run()
        assert math.isclose(
            result.gain, sum(p.gain() for p in result.patterns), rel_tol=1e-12
        )

    def test_heights_capped_at_h_init(self):
        result = make_dp(h_init=3.5).run()
        assert all(p.height <= 3.5 + 1e-12 for p in result.patterns)

    def test_max_packing_in_free_space(self):
        # 20 steps; min pattern (w=2) + gap (4) = 6 per extra pattern.
        # With node feet at both ends the packing fits 4 patterns.
        result = make_dp().run()
        assert len(result.patterns) >= 3
        assert result.gain >= 3 * 2 * 5.0 - 1e-9

    def test_patterns_sorted_and_disjoint(self):
        result = make_dp().run()
        for a, b in zip(result.patterns, result.patterns[1:]):
            assert a.x_right <= b.x_left + 1e-12

    def test_same_side_spacing_respected(self):
        result = make_dp().run()
        for a, b in zip(result.patterns, result.patterns[1:]):
            if a.direction == b.direction:
                assert b.x_left - a.x_right >= 4.0 - 1e-9  # k_gap * step

    def test_opposite_side_spacing_respected(self):
        result = make_dp().run()
        for a, b in zip(result.patterns, result.patterns[1:]):
            if a.direction != b.direction:
                gap = b.x_left - a.x_right
                assert gap <= 1e-9 or gap >= 2.0 - 1e-9  # plocal or k_protect

    def test_width_floor(self):
        result = make_dp().run()
        assert all(p.width() >= 2.0 - 1e-9 for p in result.patterns)


class TestNodeFeet:
    def test_node_feet_allowed_by_default(self):
        # A segment too short for interior stubs still fits one pattern
        # spanning node to node.
        result = make_dp(n=5, w_min=2, k_protect=2).run()
        assert result.gain > 0

    def test_node_feet_disabled(self):
        # Without node feet, a 4-step segment cannot host a pattern whose
        # stubs respect d_protect (2 + 2 + 2 > 4).
        result = make_dp(n=5, w_min=2, k_protect=2, allow_node_feet=False).run()
        assert result.gain == 0.0

    def test_disabled_keeps_interior_patterns(self):
        result = make_dp(n=21, allow_node_feet=False).run()
        assert result.gain > 0
        for p in result.patterns:
            assert p.left_index >= 2 and p.right_index <= 18


class TestObstacles:
    def test_blocking_wall_halves_gain(self):
        # Wall above the middle of the segment on both sides.
        wall = rectangle(8.0, 0.5, 13.0, 100.0)
        free = make_dp().run()
        blocked = make_dp(polys=[wall]).run()
        assert 0 < blocked.gain < free.gain

    def test_full_ceiling_stops_everything(self):
        ceiling = rectangle(-10.0, 0.5, 40.0, 100.0)
        assert make_dp(polys=[ceiling]).run().gain == 0.0

    def test_low_ceiling_reduces_heights(self):
        ceiling = rectangle(-10.0, 5.5, 40.0, 100.0)
        result = make_dp(polys=[ceiling]).run()
        assert result.gain > 0
        assert all(p.height <= 3.5 + 1e-9 for p in result.patterns)

    def test_enclosable_obstacle_spanned(self):
        # A box in the middle of a short segment blocks every foot column
        # except the outermost ones, so the only legal pattern *encloses*
        # the box — the paper's obstacle-aware signature move.
        box = rectangle(3.0, 1.0, 5.0, 2.0)
        result = make_dp(n=9, polys=[box], h_init=8.0, h_min=2.0).run()
        assert result.gain > 0
        assert all(
            p.x_left <= 1.0 + 1e-9 and p.x_right >= 7.0 - 1e-9
            for p in result.patterns
        )
        assert any(p.height > 2.0 for p in result.patterns)

    def test_packing_beats_single_enclosure_when_space_allows(self):
        # With a long segment the DP prefers many narrow patterns around
        # the box over one wide enclosing pattern — packing dominates.
        box = rectangle(9.0, 1.0, 11.0, 2.0)
        result = make_dp(polys=[box], h_init=8.0, h_min=4.0).run()
        assert result.gain >= 5 * 16.0 - 1e-6
        for p in result.patterns:
            # No foot lands in the blocked columns around the box.
            for foot in (p.x_left, p.x_right):
                assert not (7.0 < foot < 13.0)


class TestRestoration:
    def test_transit_restores_consistent_heights(self):
        dp = make_dp()
        result = dp.run()
        for p in result.patterns:
            assert math.isclose(
                p.height, dp.height(p.left_index, p.right_index, p.direction)
            )

    def test_no_gain_no_patterns(self):
        ceiling = rectangle(-10.0, 0.2, 40.0, 100.0)
        result = make_dp(polys=[ceiling]).run()
        assert result.patterns == []

    def test_max_width_cap(self):
        result = make_dp(max_width_steps=3).run()
        assert all(p.width() <= 3.0 + 1e-9 for p in result.patterns)


class TestUpperBoundPrefilter:
    def test_prefilter_matches_exact_when_unobstructed(self):
        dp = make_dp()
        assert dp.height_upper_bound(5, 9, 1) >= dp.height(5, 9, 1)

    def test_prefilter_admissible_with_obstacles(self):
        box = rectangle(4.0, 3.0, 6.0, 5.0)
        dp = make_dp(polys=[box])
        for il, ir in ((3, 7), (4, 8), (2, 10)):
            assert dp.height_upper_bound(il, ir, 1) >= dp.height(il, ir, 1) - 1e-9
