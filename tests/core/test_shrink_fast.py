"""Equivalence tests: vector shrink kernels vs. the reference environment.

:class:`VectorShrinkEnvironment` must be *bit-identical* to
:class:`ShrinkEnvironment` — same side bounds, same column bounds, same
shrink fixpoints, same tie resolution — over randomized polygon soups, in
the style of ``tests/dtw/test_dtw_fast.py``.  The vector backend is built
from the flat coordinate arrays the extension engine would hand it, so
the tests exercise exactly the construction path the incremental engine
uses.
"""

import math
import random

import pytest

from repro.core import (
    ShrinkEnvironment,
    VectorShrinkEnvironment,
    vector_kernels_available,
)
from repro.geometry import Point, Polygon

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not vector_kernels_available(),
    reason="vector kernels disabled (REPRO_PURE_PYTHON)",
)


def random_polygons(seed, n_polys=14, span=50.0):
    """Rectangles, triangles and skewed quads scattered around the frame.

    Ordinates span both signs (geometry below the segment must never
    shrink a pattern) and sizes vary from sliver to large, so side lines
    cross edges at many angles and columns see dense and empty windows.
    """
    rng = random.Random(seed)
    polys = []
    for _ in range(n_polys):
        cx = rng.uniform(-span, span)
        cy = rng.uniform(-span / 2.0, span)
        kind = rng.randrange(3)
        if kind == 0:
            w, h = rng.uniform(0.5, 12.0), rng.uniform(0.5, 12.0)
            pts = [
                Point(cx - w, cy - h),
                Point(cx + w, cy - h),
                Point(cx + w, cy + h),
                Point(cx - w, cy + h),
            ]
        elif kind == 1:
            pts = [
                Point(cx + rng.uniform(-8, 8), cy + rng.uniform(-8, 8))
                for _ in range(3)
            ]
        else:
            w, h, skew = rng.uniform(1, 9), rng.uniform(1, 9), rng.uniform(-4, 4)
            pts = [
                Point(cx - w, cy - h),
                Point(cx + w + skew, cy - h),
                Point(cx + w, cy + h),
                Point(cx - w + skew, cy + h),
            ]
        polys.append(Polygon(pts))
    return polys


def both_envs(polys):
    ref = ShrinkEnvironment(polys)
    xs = np.array([p.x for poly in polys for p in poly.points])
    ys = np.array([p.y for poly in polys for p in poly.points])
    sizes = np.array([len(poly.points) for poly in polys], dtype=np.intp)
    return ref, VectorShrinkEnvironment(xs, ys, sizes)


class TestSideBound:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_lines_bit_identical(self, seed):
        polys = random_polygons(seed)
        ref, vec = both_envs(polys)
        rng = random.Random(seed + 1000)
        for _ in range(40):
            x = rng.uniform(-60, 60)
            h_ob = rng.uniform(0.1, 80.0)
            assert vec.side_bound(x, h_ob) == ref.side_bound(x, h_ob)

    @pytest.mark.parametrize("seed", range(8))
    def test_memo_consistent_across_h_ob(self, seed):
        # The DP probes many h_ob values at the same foot abscissas; the
        # memoized crossing minimum must answer each exactly as a fresh
        # reference scan would.
        polys = random_polygons(seed, n_polys=8)
        ref, vec = both_envs(polys)
        rng = random.Random(seed)
        xs = [rng.uniform(-55, 55) for _ in range(6)]
        for h_ob in (0.01, 1.0, 5.0, 20.0, 100.0, math.inf):
            for x in xs:
                assert vec.side_bound(x, h_ob) == ref.side_bound(x, h_ob)

    def test_vertex_on_line_is_skipped(self):
        # An edge endpoint exactly on the side line must not count as a
        # crossing in either backend (the node phase owns that case).
        poly = Polygon([Point(0.0, 1.0), Point(4.0, 1.0), Point(4.0, 5.0)])
        ref, vec = both_envs([poly])
        for x in (0.0, 4.0):
            assert vec.side_bound(x, 10.0) == ref.side_bound(x, 10.0) == 10.0

    def test_empty_environment(self):
        ref, vec = both_envs([])
        assert vec.side_bound(3.0, 7.5) == ref.side_bound(3.0, 7.5) == 7.5


class TestColumnBounds:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("g", [0.3, 1.0, 4.5])
    def test_scalar_queries_bit_identical(self, seed, g):
        polys = random_polygons(seed)
        ref, vec = both_envs(polys)
        rng = random.Random(seed + 2000)
        for _ in range(30):
            x = rng.uniform(-60, 60)
            assert vec.column_node_bound(x, g) == ref.column_node_bound(x, g)

    @pytest.mark.parametrize("seed", range(10))
    def test_batch_matches_scalar_loop(self, seed):
        # The DP's one batched call per (segment, direction): every entry
        # must equal the reference's scalar query at the same abscissa,
        # including inf for empty windows.
        polys = random_polygons(seed)
        ref, vec = both_envs(polys)
        xs = np.arange(48) * 2.75 - 60.0
        batch = vec.column_bounds(xs, 1.8)
        assert [float(v) for v in batch] == ref.column_bounds(
            [float(x) for x in xs], 1.8
        )

    def test_empty_window_is_inf(self):
        ref, vec = both_envs([Polygon([Point(50, 5), Point(52, 5), Point(51, 8)])])
        assert float(vec.column_bounds(np.array([0.0]), 1.0)[0]) == math.inf
        assert ref.column_node_bound(0.0, 1.0) == math.inf


class TestNodesInBox:
    @pytest.mark.parametrize("seed", range(10))
    def test_same_ids_same_order(self, seed):
        # Both backends must seed the shrink fixpoint with the same
        # candidate ids in the same (ascending) canonical order.
        polys = random_polygons(seed)
        ref, vec = both_envs(polys)
        rng = random.Random(seed + 3000)
        for _ in range(20):
            x0, y0 = rng.uniform(-60, 50), rng.uniform(-30, 50)
            x1, y1 = x0 + rng.uniform(0, 40), y0 + rng.uniform(0, 40)
            assert list(vec._nodes_in_box(x0, x1, y0, y1)) == list(
                ref._nodes_in_box(x0, x1, y0, y1)
            )


class TestMaxPatternHeight:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("allow_enclosed", [True, False])
    def test_full_shrink_bit_identical(self, seed, allow_enclosed):
        polys = random_polygons(seed)
        ref, vec = both_envs(polys)
        rng = random.Random(seed + 4000)
        g = rng.uniform(0.5, 3.0)
        for _ in range(25):
            xl = rng.uniform(-50, 40)
            xr = xl + rng.uniform(0.5, 30.0)
            h_init = rng.uniform(0.5, 60.0)
            h_min = rng.uniform(0.1, 3.0)
            assert vec.max_pattern_height(
                xl, xr, g, h_init, h_min, allow_enclosed=allow_enclosed
            ) == ref.max_pattern_height(
                xl, xr, g, h_init, h_min, allow_enclosed=allow_enclosed
            )

    def test_poly_points_round_trip(self):
        # The vector backend reconstructs Point tuples lazily from its
        # arrays; the fixpoint compares them against borders, so they
        # must be the reference's floats exactly.
        polys = random_polygons(5)
        ref, vec = both_envs(polys)
        for pid in range(len(polys)):
            assert vec._poly_points(pid) == ref._poly_points(pid)
