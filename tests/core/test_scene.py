"""ClearanceScene vs. the exhaustive world-polygon scan.

The scene's window queries must reproduce the seed extender's
``_world_polygons`` context scan *exactly* — same polygons, same floats,
same order — under registration, exclusion and in-place trace updates.
The oracle here is a verbatim reimplementation of that scan's context
portion (obstacles + other-trace clearance rectangles; the area and the
trace's own segments stay with the extender and are out of scope).
"""

import random

import pytest

from repro.core import ClearanceScene, vector_kernels_available
from repro.geometry import Point, Polygon, Polyline, Segment, oriented_rectangle
from repro.model import Obstacle, Trace

pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not vector_kernels_available(),
    reason="vector kernels disabled (REPRO_PURE_PYTHON)",
)


def _bbox_hits(b, window):
    return (
        b[0] <= window[2]
        and window[0] <= b[2]
        and b[1] <= window[3]
        and window[1] <= b[3]
    )


def reference_polygons(obstacles, traces, window, dgap, inflation, exclude):
    """The seed extender's context scan, verbatim (order included)."""
    out = []
    for obstacle in obstacles:
        if _bbox_hits(obstacle.bounds(), window):
            out.append(obstacle.inflated(inflation))
    for trace, owner in traces:
        if trace.name in exclude or (owner is not None and owner in exclude):
            continue
        half = (trace.width + dgap) / 2.0
        for seg in trace.segments():
            if seg.is_degenerate():
                continue
            b = seg.bounds()
            inflated = (b[0] - half, b[1] - half, b[2] + half, b[3] + half)
            if _bbox_hits(inflated, window):
                out.append(oriented_rectangle(seg, half))
    return out


def random_board(seed, n_obstacles=6, n_traces=5):
    rng = random.Random(seed)
    obstacles = []
    for k in range(n_obstacles):
        cx, cy = rng.uniform(-40, 40), rng.uniform(-40, 40)
        w, h = rng.uniform(0.5, 8.0), rng.uniform(0.5, 8.0)
        obstacles.append(
            Obstacle(
                polygon=Polygon(
                    [
                        Point(cx - w, cy - h),
                        Point(cx + w, cy - h),
                        Point(cx + w, cy + h),
                        Point(cx - w, cy + h),
                    ]
                ),
                name=f"ob{k}",
            )
        )
    traces = []
    for k in range(n_traces):
        x, y = rng.uniform(-40, 20), rng.uniform(-40, 40)
        pts = [Point(x, y)]
        for _ in range(rng.randint(1, 6)):
            x += rng.uniform(0.0, 12.0)
            y += rng.uniform(-6.0, 6.0)
            pts.append(Point(x, y))
        owner = f"pair{k}" if k % 2 else None
        traces.append(
            (Trace(f"t{k}", Polyline(pts), width=rng.uniform(0.4, 1.2)), owner)
        )
    return obstacles, traces


def make_scene(obstacles, traces):
    scene = ClearanceScene(obstacles)
    for trace, owner in traces:
        scene.add_trace(trace, owner=owner)
    return scene


def random_window(rng):
    x0, y0 = rng.uniform(-50, 30), rng.uniform(-50, 30)
    return (x0, y0, x0 + rng.uniform(1.0, 60.0), y0 + rng.uniform(1.0, 60.0))


def assert_same_polygons(got, want):
    assert [tuple(p.points) for p in got] == [tuple(p.points) for p in want]


class TestQueryEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_windows_match_exhaustive_scan(self, seed):
        obstacles, traces = random_board(seed)
        scene = make_scene(obstacles, traces)
        rng = random.Random(seed + 500)
        for _ in range(15):
            window = random_window(rng)
            dgap = rng.choice((2.5, 4.0))
            inflation = rng.uniform(0.0, 3.0)
            assert_same_polygons(
                scene.query_polygons(window, dgap, inflation),
                reference_polygons(
                    obstacles, traces, window, dgap, inflation, frozenset()
                ),
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_exclusion_by_name_and_owner(self, seed):
        obstacles, traces = random_board(seed)
        scene = make_scene(obstacles, traces)
        rng = random.Random(seed + 900)
        window = (-60.0, -60.0, 60.0, 60.0)
        # Excluding a sub-trace name drops it; excluding the owning pair
        # name drops every sub-trace of that pair — the router's
        # _context_traces filter, expressed as a query mask.
        for exclude in (
            frozenset({"t0"}),
            frozenset({"pair1"}),
            frozenset({"t2", "pair3"}),
            frozenset({"no-such-trace"}),
        ):
            assert_same_polygons(
                scene.query_polygons(window, 4.0, 1.0, exclude),
                reference_polygons(obstacles, traces, window, 4.0, 1.0, exclude),
            )

    def test_whole_board_and_empty_windows(self):
        obstacles, traces = random_board(3)
        scene = make_scene(obstacles, traces)
        everything = scene.query_polygons((-1e9, -1e9, 1e9, 1e9), 4.0, 1.0)
        assert_same_polygons(
            everything,
            reference_polygons(
                obstacles, traces, (-1e9, -1e9, 1e9, 1e9), 4.0, 1.0, frozenset()
            ),
        )
        assert len(everything) > 0
        assert scene.query_polygons((900.0, 900.0, 901.0, 901.0), 4.0, 1.0) == []

    def test_degenerate_segments_never_reported(self):
        trace = Trace(
            "z",
            Polyline([Point(0, 0), Point(5, 0), Point(5, 0), Point(9, 2)]),
            width=1.0,
        )
        scene = ClearanceScene([])
        scene.add_trace(trace)
        got = scene.query_polygons((-10, -10, 20, 20), 4.0, 0.0)
        assert len(got) == 2  # the zero-length middle segment is dropped

    def test_collect_window_matches_query_polygons(self):
        obstacles, traces = random_board(7)
        scene = make_scene(obstacles, traces)
        window = (-30.0, -30.0, 30.0, 30.0)
        polys = scene.query_polygons(window, 2.5, 0.75)
        chunks, sizes = [], []
        scene.collect_window(chunks, sizes, window, 2.5, 0.75)
        assert len(chunks) == len(sizes) == len(polys)
        for pts, size, poly in zip(chunks, sizes, polys):
            assert size == len(pts) == len(poly.points)
            assert [(p.x, p.y) for p in poly.points] == [
                (float(x), float(y)) for x, y in pts
            ]


class TestMutation:
    def test_update_trace_changes_answers(self):
        trace = Trace("t", Polyline([Point(0, 0), Point(10, 0)]), width=1.0)
        scene = ClearanceScene([])
        scene.add_trace(trace)
        window = (-5.0, -5.0, 15.0, 5.0)
        before = scene.query_polygons(window, 4.0, 0.0)
        assert len(before) == 1

        moved = Trace("t", Polyline([Point(0, 100), Point(10, 100)]), width=1.0)
        scene.update_trace(moved)
        assert scene.query_polygons(window, 4.0, 0.0) == []
        assert len(scene.query_polygons((-5, 95, 15, 105), 4.0, 0.0)) == 1

    def test_update_unknown_trace_is_ignored(self):
        scene = ClearanceScene([])
        scene.update_trace(
            Trace("ghost", Polyline([Point(0, 0), Point(1, 0)]), width=1.0)
        )
        assert scene.trace_names() == []

    def test_duplicate_registration_rejected(self):
        scene = ClearanceScene([])
        scene.add_trace(Trace("t", Polyline([Point(0, 0), Point(1, 0)]), width=1.0))
        with pytest.raises(ValueError):
            scene.add_trace(
                Trace("t", Polyline([Point(5, 5), Point(6, 5)]), width=1.0)
            )

    def test_update_matches_fresh_scene(self):
        # After an update, every query must equal a scene built from
        # scratch over the new geometry — the router relies on this when
        # it reroutes members of a group one by one.
        obstacles, traces = random_board(11)
        scene = make_scene(obstacles, traces)
        rerouted = Trace(
            "t1",
            Polyline([Point(-20, -20), Point(0, -18), Point(20, -22)]),
            width=0.8,
        )
        scene.update_trace(rerouted)
        fresh_traces = [
            (rerouted if t.name == "t1" else t, owner) for t, owner in traces
        ]
        fresh = make_scene(obstacles, fresh_traces)
        rng = random.Random(42)
        for _ in range(10):
            window = random_window(rng)
            assert_same_polygons(
                scene.query_polygons(window, 4.0, 1.0),
                fresh.query_polygons(window, 4.0, 1.0),
            )
