"""Unit tests for the AiDT proxy comparator."""

import math

import pytest

from repro.core import AiDTConfig, AiDTProxy
from repro.drc import check_board
from repro.geometry import Point, Polyline
from repro.model import Board, DesignRules, DifferentialPair, MatchGroup, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def simple_board():
    board = Board.with_rect_outline(-10, -25, 130, 45, RULES)
    group = MatchGroup("g", target_length=125.0)
    for k, length in enumerate((85.0, 100.0)):
        t = board.add_trace(
            Trace(f"t{k}", Polyline([Point(0, k * 25.0), Point(length, k * 25.0)]), width=1.0)
        )
        group.add(t)
    board.add_group(group)
    return board


class TestSingleEnded:
    def test_reduces_error(self):
        board = simple_board()
        report = AiDTProxy(board).match_group(board.groups[0])
        assert report.max_error() < 0.1  # initial was 32%

    def test_never_overshoots(self):
        board = simple_board()
        report = AiDTProxy(board).match_group(board.groups[0])
        assert all(m.length_after <= m.target + 1e-6 for m in report.members)

    def test_board_updated_and_clean(self):
        board = simple_board()
        AiDTProxy(board).match_group(board.groups[0])
        assert check_board(board).is_clean()

    def test_report_fields(self):
        board = simple_board()
        report = AiDTProxy(board).match_group(board.groups[0])
        assert report.target == 125.0
        assert all(m.kind == "trace" for m in report.members)


class TestDifferential:
    def make_pair_board(self, decoupled: bool):
        board = Board.with_rect_outline(-10, -30, 130, 30, RULES)
        p_pts = [Point(0, 1.0), Point(100, 1.0)]
        if decoupled:
            n_pts = [
                Point(0, -1.0),
                Point(40, -1.0),
                Point(40.5, -1.7),
                Point(41.2, -1.7),
                Point(41.7, -1.0),
                Point(100, -1.0),
            ]
        else:
            n_pts = [Point(0, -1.0), Point(100, -1.0)]
        p = Trace("d_P", Polyline(p_pts), width=0.6)
        n = Trace("d_N", Polyline(n_pts), width=0.6)
        pair = board.add_pair(DifferentialPair("d", p, n, rule=2.0))
        group = MatchGroup("g", members=[pair], target_length=120.0)
        board.add_group(group)
        return board

    def test_pair_extends(self):
        board = self.make_pair_board(decoupled=False)
        report = AiDTProxy(board).match_group(board.groups[0])
        m = report.members[0]
        assert m.length_after > m.length_before

    def test_no_skew_compensation(self):
        # The proxy restores by plain offsetting without compensation;
        # for this straight pair skew stays near zero but the *precision*
        # is whatever the gridded tuner achieved.
        board = self.make_pair_board(decoupled=False)
        report = AiDTProxy(board).match_group(board.groups[0])
        assert report.members[0].kind == "pair"

    def test_midline_shifts_on_decoupled_pair(self):
        # The naive sampled merge is dragged sideways by the tiny pattern
        # (Fig. 10(b)'s failure mode) — the motivation for MSDTW.
        board = self.make_pair_board(decoupled=True)
        proxy = AiDTProxy(board)
        midline = proxy._naive_midline(board.pairs[0])
        ys = [p.y for p in midline.points]
        assert min(ys) < -1e-3  # shifted off the true median y=0

    def test_midline_clean_on_coupled_pair(self):
        board = self.make_pair_board(decoupled=False)
        midline = AiDTProxy(board)._naive_midline(board.pairs[0])
        assert all(abs(p.y) < 1e-9 for p in midline.points)
