"""Tests for the chevron finishing stage (sub-pattern residual closing)."""

import math

import pytest

from repro.core import ExtensionConfig, TraceExtender
from repro.drc import check_obstacle_clearance, check_segment_lengths, check_self_clearance
from repro.geometry import Point, Polyline, offset_polyline, rectangle
from repro.model import DesignRules, Trace, via

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
AREA = rectangle(-20.0, -40.0, 120.0, 40.0)


def extender(obstacles=(), other=(), **cfg) -> TraceExtender:
    return TraceExtender(RULES, AREA, list(obstacles), list(other), ExtensionConfig(**cfg))


def straight(length=100.0) -> Trace:
    return Trace("t", Polyline([Point(0, 0), Point(length, 0)]), width=1.0)


class TestDeadZoneResiduals:
    @pytest.mark.parametrize("residual", [0.5, 1.0, 2.5, 3.9])
    def test_sub_pattern_residuals_closed_exactly(self, residual):
        # Any need below 2*d_protect = 4 is unreachable by patterns alone.
        result = extender().extend(straight(), 100.0 + residual)
        assert math.isclose(result.achieved, 100.0 + residual, abs_tol=1e-6)

    def test_chevron_segments_respect_dprotect(self):
        result = extender().extend(straight(), 101.0)
        assert check_segment_lengths(result.trace, RULES).is_clean()

    def test_chevron_corners_obtuse(self):
        result = extender().extend(straight(), 101.0)
        for angle in result.trace.path.node_angles():
            assert angle > math.pi / 2

    def test_chevron_avoids_obstacles(self):
        # Vias hugging the longest segment force the chevron elsewhere or
        # to the far side.
        vias = [via(Point(50, 4.0), 1.5)]
        result = extender(obstacles=vias).extend(straight(), 101.0)
        assert math.isclose(result.achieved, 101.0, abs_tol=1e-6)
        assert check_obstacle_clearance(result.trace, vias, RULES).is_clean()

    def test_combined_with_patterns(self):
        # 100 -> 141.0: patterns cover 40, a chevron the odd 1.0.
        result = extender().extend(straight(), 141.0)
        assert math.isclose(result.achieved, 141.0, abs_tol=1e-6)
        assert check_self_clearance(result.trace, RULES).is_clean()


class TestMirroredChevrons:
    def test_offset_skew_free(self):
        # The mirrored pair cancels offset-skew exactly; a single chevron
        # does not.
        single = extender().extend(straight(), 101.5)
        paired = extender(mirrored_chevrons=True).extend(straight(), 101.5)

        def offset_skew(trace):
            left = offset_polyline(trace.path, +1.0).length()
            right = offset_polyline(trace.path, -1.0).length()
            return abs(left - right)

        assert offset_skew(paired.trace) <= 1e-9
        assert offset_skew(single.trace) > 1e-6

    def test_paired_still_exact(self):
        result = extender(mirrored_chevrons=True).extend(straight(), 101.5)
        assert math.isclose(result.achieved, 101.5, abs_tol=1e-6)

    def test_falls_back_to_single_on_short_trace(self):
        short = Trace("t", Polyline([Point(0, 0), Point(14, 0)]), width=1.0)
        result = extender(mirrored_chevrons=True).extend(short, 15.0)
        assert math.isclose(result.achieved, 15.0, abs_tol=1e-6)


class TestPlocalFlag:
    def test_plocal_increases_capacity(self):
        corridor = rectangle(-5.0, -8.0, 105.0, 8.0)
        with_p = TraceExtender(
            RULES, corridor, [], [], ExtensionConfig()
        ).extension_upper_bound(straight())
        without = TraceExtender(
            RULES, corridor, [], [], ExtensionConfig(allow_plocal=False)
        ).extension_upper_bound(straight())
        assert with_p.achieved > without.achieved

    def test_no_plocal_means_no_shared_feet(self):
        corridor = rectangle(-5.0, -8.0, 105.0, 8.0)
        result = TraceExtender(
            RULES, corridor, [], [], ExtensionConfig(allow_plocal=False)
        ).extension_upper_bound(straight())
        # Without plocal no leg may cross the original axis (a crossing
        # leg only arises from two connected opposite patterns).
        for seg in result.trace.path.segments():
            assert not (seg.a.y > 1e-9 and seg.b.y < -1e-9)
            assert not (seg.a.y < -1e-9 and seg.b.y > 1e-9)
