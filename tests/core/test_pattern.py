"""Unit tests for convex patterns and chain assembly."""

import math

import pytest

from repro.core import Pattern, chain_new_segments, miter_pattern_corners, patterns_to_chain
from repro.geometry import Frame, Point, Polyline, Segment


def frames_for(seg: Segment):
    return {d: Frame.from_segment(seg, d) for d in (1, -1)}


class TestPattern:
    def test_gain_is_twice_height(self):
        p = Pattern(x_left=2, x_right=5, height=4, direction=1)
        assert p.gain() == 8

    def test_width(self):
        assert Pattern(2, 5, 4, 1).width() == 3

    def test_validates_feet_order(self):
        with pytest.raises(ValueError):
            Pattern(5, 2, 4, 1)

    def test_validates_height(self):
        with pytest.raises(ValueError):
            Pattern(2, 5, 0, 1)

    def test_validates_direction(self):
        with pytest.raises(ValueError):
            Pattern(2, 5, 4, 2)

    def test_local_points_rectangle(self):
        pts = Pattern(2, 5, 4, 1).local_points()
        assert pts == [Point(2, 0), Point(2, 4), Point(5, 4), Point(5, 0)]

    def test_world_points_follow_frame(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        f = Frame.from_segment(seg, 1)
        pts = Pattern(2, 5, 4, 1).world_points(f)
        assert pts[1].almost_equals(Point(2, 4))

    def test_world_points_mirrored(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        f = Frame.from_segment(seg, -1)
        pts = Pattern(2, 5, 4, -1).world_points(f)
        assert pts[1].almost_equals(Point(2, -4))

    def test_with_height(self):
        p = Pattern(2, 5, 4, 1).with_height(2.5)
        assert p.height == 2.5 and p.x_left == 2


class TestChainAssembly:
    def test_single_pattern_chain(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        chain = patterns_to_chain(seg, [Pattern(3, 6, 2, 1)], frames_for(seg))
        line = Polyline(chain)
        assert line.start == seg.a and line.end == seg.b
        assert math.isclose(line.length(), 10 + 4)

    def test_two_separate_patterns(self):
        seg = Segment(Point(0, 0), Point(20, 0))
        patterns = [Pattern(2, 5, 2, 1), Pattern(10, 13, 3, -1)]
        chain = patterns_to_chain(seg, patterns, frames_for(seg))
        assert math.isclose(Polyline(chain).length(), 20 + 4 + 6)

    def test_connected_opposite_patterns_merge_leg(self):
        # plocal connection (Fig. 3(c)): shared foot at x=6 crosses the axis.
        seg = Segment(Point(0, 0), Point(20, 0))
        patterns = [Pattern(2, 6, 2, 1), Pattern(6, 10, 3, -1)]
        chain = patterns_to_chain(seg, patterns, frames_for(seg))
        line = Polyline(chain)
        assert math.isclose(line.length(), 20 + 4 + 6)
        # The crossing leg is one straight segment from (6,2) to (6,-3).
        assert Point(6, 2) in chain and Point(6, -3) in chain
        assert Point(6, 0) not in chain

    def test_diagonal_segment_any_direction(self):
        seg = Segment(Point(0, 0), Point(10, 10))
        chain = patterns_to_chain(seg, [Pattern(3, 6, 2, 1)], frames_for(seg))
        line = Polyline(chain)
        assert math.isclose(line.length(), seg.length() + 4, rel_tol=1e-9)
        assert line.start.almost_equals(seg.a) and line.end.almost_equals(seg.b)

    def test_foot_on_node(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        chain = patterns_to_chain(seg, [Pattern(0, 4, 2, 1)], frames_for(seg))
        line = Polyline(chain)
        assert line.start == seg.a
        assert math.isclose(line.length(), 10 + 4)

    def test_chain_new_segments(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        chain = patterns_to_chain(seg, [Pattern(3, 6, 2, 1)], frames_for(seg))
        segs = chain_new_segments(chain)
        assert len(segs) == 5  # stub, leg, top, leg, stub
        assert all(not s.is_degenerate() for s in segs)


class TestMiter:
    def test_no_miter_identity(self):
        pts = [Point(0, 0), Point(5, 0), Point(5, 5)]
        assert miter_pattern_corners(pts, 0.0) == pts

    def test_right_angle_cut(self):
        pts = [Point(0, 0), Point(5, 0), Point(5, 5)]
        out = miter_pattern_corners(pts, 1.0)
        assert len(out) == 4
        assert Point(4, 0) in out and Point(5, 1) in out

    def test_miter_shortens_path(self):
        pts = [Point(0, 0), Point(5, 0), Point(5, 5)]
        before = Polyline(pts).length()
        after = Polyline(miter_pattern_corners(pts, 1.0)).length()
        assert math.isclose(before - after, 2 - math.sqrt(2))

    def test_obtuse_corner_untouched(self):
        pts = [Point(0, 0), Point(5, 0), Point(10, 2)]
        assert len(miter_pattern_corners(pts, 1.0)) == 3

    def test_short_segments_skipped(self):
        pts = [Point(0, 0), Point(1.5, 0), Point(1.5, 5)]
        assert len(miter_pattern_corners(pts, 1.0)) == 3
