"""Unit tests for the fixed-track (no-DP) baseline — the Table II ablation."""

import math

import pytest

from repro.core import ExtensionConfig, FixedTrackConfig, FixedTrackMeander, TraceExtender
from repro.drc import check_segment_lengths, check_self_clearance
from repro.geometry import Point, Polyline, rectangle
from repro.model import DesignRules, Trace, via

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
AREA = rectangle(-20.0, -40.0, 120.0, 40.0)


def baseline(obstacles=(), area=AREA, fixed=None) -> FixedTrackMeander:
    return FixedTrackMeander(
        rules=RULES,
        area=area,
        obstacles=list(obstacles),
        other_traces=[],
        config=ExtensionConfig(),
        fixed=fixed or FixedTrackConfig(),
    )


def straight(length=100.0) -> Trace:
    return Trace("t", Polyline([Point(0, 0), Point(length, 0)]), width=1.0)


class TestBasics:
    def test_extends_in_free_space(self):
        result = baseline().extend(straight(), 140.0)
        assert result.achieved >= 135.0  # quantized, may fall just short

    def test_never_overshoots(self):
        result = baseline().extend(straight(), 140.0)
        assert result.achieved <= 140.0 + 1e-6

    def test_endpoints_preserved(self):
        result = baseline().extend(straight(), 130.0)
        assert result.trace.path.start == Point(0, 0)
        assert result.trace.path.end == Point(100, 0)

    def test_result_is_drc_clean(self):
        result = baseline().extend(straight(), 150.0)
        assert check_self_clearance(result.trace, RULES).is_clean()
        assert check_segment_lengths(result.trace, RULES).is_clean()

    def test_upper_bound_positive(self):
        ub = baseline().extension_upper_bound(straight())
        assert ub.achieved > 150.0


class TestRigidity:
    def test_no_enclosure_of_obstacles(self):
        # A via close to the trace: the DP encloses/skirts it, the fixed-
        # track router must stay strictly below it.
        vias = [via(Point(50, 6), 1.5)]
        dp_ub = TraceExtender(
            RULES, AREA, vias, [], ExtensionConfig()
        ).extension_upper_bound(straight())
        fixed_ub = baseline(obstacles=vias).extension_upper_bound(straight())
        assert fixed_ub.achieved < dp_ub.achieved

    def test_single_pass_only(self):
        # Iterations are bounded by the segment count (one pass), unlike
        # the DP loop which re-queues new segments.
        result = baseline().extension_upper_bound(straight())
        assert result.iterations <= 2

    def test_heights_quantized(self):
        fixed = FixedTrackConfig(track_step=3.0)
        result = baseline(fixed=fixed).extension_upper_bound(straight())
        heights = set()
        pts = result.trace.path.points
        for p in pts:
            if abs(p.y) > 1e-9:
                heights.add(round(abs(p.y), 6))
        assert heights
        assert all(math.isclose(h % 3.0, 0.0, abs_tol=1e-6) or math.isclose(h % 3.0, 3.0, abs_tol=1e-6) for h in heights)

    def test_constant_pattern_width(self):
        fixed = FixedTrackConfig(pattern_width=4.0)
        result = baseline(fixed=fixed).extension_upper_bound(straight())
        # All pattern tops have the configured width.
        segs = result.trace.path.segments()
        tops = [s for s in segs if abs(s.a.y) > 1e-9 and abs(s.a.y - s.b.y) < 1e-9]
        assert tops
        assert all(math.isclose(t.length(), 4.0, abs_tol=0.6) for t in tops)


class TestAblationContrast:
    def test_dp_dominates_in_dense_field(self):
        from repro.bench.designs import make_table2_design

        board, trace = make_table2_design(4.0)
        rules = board.rules.rules_for_points(trace.path.points)
        area = board.member_routable_area(trace)
        dp = TraceExtender(
            rules, area, board.obstacles, [], ExtensionConfig(max_iterations=800)
        ).extension_upper_bound(trace)
        fixed = FixedTrackMeander(
            rules, area, board.obstacles, [], ExtensionConfig()
        ).extension_upper_bound(trace)
        assert dp.achieved > fixed.achieved * 1.5
