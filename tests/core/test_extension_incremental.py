"""White-box tests for the incremental engine's path state.

The stale-duplicate-key bug this PR fixes: the reference queue addresses
segments by coordinates rounded to 1e-6, so two distinct segments can
share a key and a queued entry can silently alias onto geometry it never
meant.  ``_PathState`` replaces keys with stable integer handles that
are invalidated at mutation time — these tests pin the handle lifecycle,
the splice bookkeeping, the incremental length identity and the
wasted-iteration accounting end to end.
"""

import math

import pytest

from repro.core.extension import (
    ExtensionConfig,
    TraceExtender,
    _PathState,
    _segment_key,
)
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.model import DesignRules, Trace

pytest.importorskip("numpy")


def make_state(xs=(0.0, 10.0, 20.0, 30.0)):
    return _PathState(Polyline([Point(x, 0.0) for x in xs]))


class TestHandleLifecycle:
    def test_initial_handles_map_to_positions(self):
        state = make_state()
        assert [state.pop_handle(h) for h in range(3)] == [0, 1, 2]
        assert state.stale_pops == 0

    def test_rounded_keys_collide_where_handles_cannot(self):
        # Two distinct segments whose coordinates differ by less than the
        # key rounding: the reference addressing cannot tell them apart.
        s1 = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        s2 = Segment(Point(0.0, 4e-7), Point(10.0, -4e-7))
        assert s1.a != s2.a
        assert _segment_key(s1) == _segment_key(s2)
        # Handles address positions, not coordinates — no aliasing.
        state = _PathState(Polyline([s1.a, s1.b, Point(10.0 + 1e-7, 10.0)]))
        assert state.pop_handle(0) == 0
        assert state.pop_handle(1) == 1

    def test_commit_invalidates_replaced_handle(self):
        state = make_state()
        chain = [Point(10.0, 0.0), Point(15.0, 5.0), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        state.commit(1, chain, candidate)
        assert state.pop_handle(1) is None
        assert state.stale_pops == 1

    def test_commit_drops_queued_stale_entry_at_mutation_time(self):
        # The handle is still in the queue when its segment is replaced:
        # the dedupe must happen *now* (counted in stale_drops), not at
        # pop time.
        state = make_state()
        assert 1 in state.in_queue
        chain = [Point(10.0, 0.0), Point(15.0, 5.0), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        state.commit(1, chain, candidate)
        assert state.stale_drops == 1
        assert 1 not in state.in_queue

    def test_popped_then_committed_is_not_double_counted(self):
        state = make_state()
        assert state.pop_handle(1) == 1  # popped first, like the real loop
        chain = [Point(10.0, 0.0), Point(15.0, 5.0), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        state.commit(1, chain, candidate)
        assert state.stale_drops == 0  # it was no longer queued


class TestSpliceBookkeeping:
    def test_tail_handles_survive_a_splice(self):
        state = make_state()
        chain = [Point(10.0, 0.0), Point(15.0, 5.0), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        new_handles = state.commit(1, chain, candidate)
        # Handle 2 still addresses the same segment object, now shifted.
        pos = state.pop_handle(2)
        assert state.segments[pos] == Segment(Point(20.0, 0.0), Point(30.0, 0.0))
        assert pos == 3
        # The new handles address the spliced chain segments in order.
        assert [state.handle_pos[h] for h in new_handles] == [1, 2]

    def test_degenerate_chain_segments_not_enqueued(self):
        state = make_state()
        chain = [
            Point(10.0, 0.0),
            Point(15.0, 5.0),
            Point(15.0, 5.0),  # zero-length joint
            Point(20.0, 0.0),
        ]
        candidate = state.path.replace_segment(1, chain)
        enqueue = state.commit(1, chain, candidate)
        # Three segments spliced in, but only the two non-degenerate ones
        # come back for requeueing — chain_new_segments' filter.
        assert len(enqueue) == 2
        assert all(not state.degenerate[state.handle_pos[h]] for h in enqueue)

    def test_incremental_length_is_bit_identical(self):
        state = make_state()
        assert state.length() == state.path.length()
        chain = [Point(10.0, 0.0), Point(12.5, 7.3), Point(17.1, 7.3), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        state.commit(1, chain, candidate)
        assert state.length() == state.path.length()
        # And again after a second splice on a chain segment.
        chain2 = [Point(12.5, 7.3), Point(14.0, 9.0), Point(17.1, 7.3)]
        candidate2 = state.path.replace_segment(2, chain2)
        state.commit(2, chain2, candidate2)
        assert state.length() == state.path.length()

    def test_parallel_lists_stay_consistent(self):
        state = make_state()
        chain = [Point(10.0, 0.0), Point(13.0, 4.0), Point(20.0, 0.0)]
        candidate = state.path.replace_segment(1, chain)
        state.commit(1, chain, candidate)
        n = len(state.segments)
        assert len(state.seg_lengths) == len(state.seg_bounds) == n
        assert len(state.degenerate) == len(state.pos_handle) == n
        for pos, handle in enumerate(state.pos_handle):
            assert state.handle_pos[handle] == pos
        for pos, seg in enumerate(state.segments):
            assert seg == state.path.segment(pos)
            assert state.seg_bounds[pos] == seg.bounds()


class TestNoWastedIterations:
    def _extend(self, engine):
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        area = Polygon(
            [Point(-20, -50), Point(120, -50), Point(120, 50), Point(-20, 50)]
        )
        trace = Trace("t", Polyline([Point(0, 0), Point(100, 0)]), width=1.0)
        extender = TraceExtender(
            rules, area, config=ExtensionConfig(engine=engine)
        )
        return extender.extend(trace, 260.0)

    @pytest.mark.parametrize("engine", ["reference", "incremental"])
    def test_no_stale_drops_on_clean_runs(self, engine):
        # The regression surface of the bugfix: with per-instance
        # addressing nothing ever goes stale organically, and the
        # reference's rounded keys must not collide on real geometry
        # either.  A regression in either scheme shows up as wasted
        # iterations here.
        result = self._extend(engine)
        assert result.stale_drops == 0
        assert result.achieved == pytest.approx(260.0, abs=1e-3)

    def test_engines_agree_on_the_open_board(self):
        ref = self._extend("reference")
        inc = self._extend("incremental")
        assert repr(inc.achieved) == repr(ref.achieved)
        assert inc.iterations == ref.iterations
        assert inc.patterns_applied == ref.patterns_applied
        assert [
            (repr(p.x), repr(p.y)) for p in inc.trace.path.points
        ] == [(repr(p.x), repr(p.y)) for p in ref.trace.path.points]

    def test_upper_bound_run_agrees_with_obstacles(self):
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        area = Polygon(
            [Point(-20, -50), Point(120, -50), Point(120, 50), Point(-20, 50)]
        )
        from repro.model import Obstacle

        obstacles = [
            Obstacle(
                polygon=Polygon(
                    [Point(30, 5), Point(45, 5), Point(45, 20), Point(30, 20)]
                ),
                name="blk",
            )
        ]
        trace = Trace("t", Polyline([Point(0, 0), Point(100, 0)]), width=1.0)

        def run(engine):
            extender = TraceExtender(
                rules,
                area,
                obstacles=obstacles,
                config=ExtensionConfig(engine=engine, max_iterations=60),
            )
            return extender.extend(trace, math.inf)

        ref, inc = run("reference"), run("incremental")
        assert repr(inc.achieved) == repr(ref.achieved)
        assert inc.stale_drops == ref.stale_drops == 0
        assert [
            (repr(p.x), repr(p.y)) for p in inc.trace.path.points
        ] == [(repr(p.x), repr(p.y)) for p in ref.trace.path.points]
