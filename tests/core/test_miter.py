"""Tests for d_miter corner mitering (Fig. 1's fourth DRC distance)."""

import math

import pytest

from repro.core import ExtensionConfig, LengthMatchingRouter, RouterConfig, TraceExtender
from repro.drc import check_segment_lengths
from repro.geometry import Point, Polyline, rectangle
from repro.model import Board, DesignRules, MatchGroup, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0, dmiter=0.8)
AREA = rectangle(-20.0, -40.0, 120.0, 40.0)


def extender(rules=RULES) -> TraceExtender:
    return TraceExtender(rules, AREA, [], [], ExtensionConfig())


def straight(length=100.0) -> Trace:
    return Trace("t", Polyline([Point(0, 0), Point(length, 0)]), width=1.0)


def corner_angles(path: Polyline):
    return path.node_angles()


class TestExtendMitered:
    def test_reaches_target(self):
        result = extender().extend_mitered(straight(), 140.0)
        assert math.isclose(result.achieved, 140.0, abs_tol=1e-3)

    def test_all_corners_obtuse(self):
        result = extender().extend_mitered(straight(), 150.0)
        for angle in corner_angles(result.trace.path):
            assert angle > math.pi / 2 + 1e-9

    def test_unmitered_has_right_angles(self):
        result = extender().extend(straight(), 150.0)
        assert any(
            math.isclose(a, math.pi / 2, abs_tol=1e-9)
            for a in corner_angles(result.trace.path)
        )

    def test_no_miter_rule_is_passthrough(self):
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0, dmiter=0.0)
        r1 = extender(rules).extend_mitered(straight(), 140.0)
        r2 = extender(rules).extend(straight(), 140.0)
        assert r1.trace.path.points == r2.trace.path.points

    def test_miter_cuts_exempt_from_dprotect(self):
        result = extender().extend_mitered(straight(), 150.0)
        assert check_segment_lengths(result.trace, RULES).is_clean()

    def test_miter_cut_length(self):
        result = extender().extend_mitered(straight(), 150.0)
        cut = math.sqrt(2.0) * RULES.dmiter
        cuts = [
            s.length()
            for s in result.trace.path.segments()
            if s.length() < RULES.dprotect
        ]
        assert cuts  # miters exist
        assert all(math.isclose(c, cut, rel_tol=0.02) for c in cuts)

    def test_endpoints_preserved(self):
        result = extender().extend_mitered(straight(), 150.0)
        assert result.trace.path.start == Point(0, 0)
        assert result.trace.path.end == Point(100, 0)


class TestRouterIntegration:
    def test_router_applies_miter(self):
        board = Board.with_rect_outline(-10, -30, 120, 30, RULES)
        t = board.add_trace(straight())
        group = MatchGroup("g", members=[t], target_length=140.0)
        board.add_group(group)
        config = RouterConfig(apply_miter=True)
        report = LengthMatchingRouter(board, config).match_group(group)
        assert math.isclose(report.members[0].length_after, 140.0, abs_tol=1e-3)
        for angle in corner_angles(board.trace_by_name("t").path):
            assert angle > math.pi / 2 + 1e-9
