"""Unit tests for the queue-driven extension loop (Alg. 1)."""

import math

import pytest

from repro.core import ExtensionConfig, TraceExtender
from repro.drc import check_obstacle_clearance, check_segment_lengths, check_self_clearance
from repro.geometry import Point, Polyline, rectangle
from repro.model import DesignRules, Trace, via

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
AREA = rectangle(-20.0, -40.0, 120.0, 40.0)


def extender(obstacles=(), other=(), area=AREA, rules=RULES, **cfg) -> TraceExtender:
    return TraceExtender(
        rules=rules,
        area=area,
        obstacles=list(obstacles),
        other_traces=list(other),
        config=ExtensionConfig(**cfg),
    )


def straight(length=100.0, name="t", width=1.0) -> Trace:
    return Trace(name, Polyline([Point(0, 0), Point(length, 0)]), width=width)


class TestExactMatching:
    def test_hits_target_exactly_in_free_space(self):
        result = extender().extend(straight(), 140.0)
        assert math.isclose(result.achieved, 140.0, abs_tol=1e-6)
        assert result.reached

    def test_small_extension(self):
        result = extender().extend(straight(), 104.5)
        assert math.isclose(result.achieved, 104.5, abs_tol=1e-3)

    def test_large_extension_in_tight_corridor(self):
        # On a single free segment one DP pass is already optimal (plocal
        # chains at full amplitude), so a target near the upper bound is
        # still met exactly.
        corridor = rectangle(-5.0, -8.0, 105.0, 8.0)
        result = extender(area=corridor).extend(straight(), 500.0)
        assert math.isclose(result.achieved, 500.0, abs_tol=1e-3)

    def test_dense_via_field_forces_iterations(self):
        # In a dense via field the first pass leaves gains on the table;
        # the queue re-visits the new component segments (Alg. 1's loop)
        # and meanders on the meanders.
        from repro.bench.designs import make_table2_design

        board, trace = make_table2_design(2.5)
        rules = board.rules.rules_for_points(trace.path.points)
        ext = TraceExtender(
            rules=rules,
            area=board.member_routable_area(trace),
            obstacles=board.obstacles,
            other_traces=[],
            config=ExtensionConfig(max_iterations=800),
        )
        result = ext.extension_upper_bound(trace)
        assert result.iterations > 10
        assert result.achieved > 3.0 * trace.length()

    def test_target_below_length_rejected(self):
        with pytest.raises(ValueError):
            extender().extend(straight(), 50.0)

    def test_target_equal_noop(self):
        result = extender().extend(straight(), 100.0)
        assert result.achieved == 100.0
        assert result.patterns_applied == 0

    def test_endpoints_preserved(self):
        result = extender().extend(straight(), 160.0)
        assert result.trace.path.start == Point(0, 0)
        assert result.trace.path.end == Point(100, 0)

    def test_gain_property(self):
        result = extender().extend(straight(), 130.0)
        assert math.isclose(result.gain, 30.0, abs_tol=1e-6)

    def test_error_metric(self):
        result = extender().extend(straight(), 140.0)
        assert abs(result.error()) <= 1e-6


class TestAnyDirection:
    @pytest.mark.parametrize("angle_deg", [0, 17, 45, 90, 133, 218, 305])
    def test_rotation_invariant_gain(self, angle_deg):
        angle = math.radians(angle_deg)
        d = Point(math.cos(angle), math.sin(angle))
        trace = Trace("t", Polyline([Point(0, 0), d * 100.0]), width=1.0)
        area = rectangle(-150, -150, 150, 150)
        result = extender(area=area).extend(trace, 150.0)
        assert math.isclose(result.achieved, 150.0, abs_tol=1e-3)

    def test_diagonal_result_is_drc_clean(self):
        angle = math.radians(30)
        d = Point(math.cos(angle), math.sin(angle))
        trace = Trace("t", Polyline([Point(0, 0), d * 100.0]), width=1.0)
        area = rectangle(-150, -150, 150, 150)
        result = extender(area=area).extend(trace, 170.0)
        assert check_self_clearance(result.trace, RULES).is_clean()
        assert check_segment_lengths(result.trace, RULES).is_clean()


class TestObstacles:
    def test_routes_around_via(self):
        vias = [via(Point(50, 7), 2.0)]
        result = extender(obstacles=vias).extend(straight(), 150.0)
        assert math.isclose(result.achieved, 150.0, abs_tol=1e-3)
        assert check_obstacle_clearance(result.trace, vias, RULES).is_clean()

    def test_dense_field_still_clean(self):
        # Via rows at y in {9, 7, 5}: the closest leaves 3.5 of clearance
        # to the untouched trace, so the original layout is DRC-clean.
        vias = [via(Point(20 + 15 * k, 9 - 2 * (k % 3)), 1.5) for k in range(5)]
        result = extender(obstacles=vias).extend(straight(), 160.0)
        assert result.achieved > 100.0
        assert check_obstacle_clearance(result.trace, vias, RULES).is_clean()
        assert check_self_clearance(result.trace, RULES).is_clean()

    def test_blocked_space_reports_shortfall(self):
        # A tight area allows only limited meandering.
        tight = rectangle(-5.0, -4.0, 105.0, 4.0)
        result = extender(area=tight).extend(straight(), 400.0)
        assert result.achieved < 400.0
        assert not result.reached


class TestOtherTraces:
    def test_keeps_clearance_to_neighbour(self):
        neighbour = Trace(
            "n", Polyline([Point(0, 10), Point(100, 10)]), width=1.0
        )
        result = extender(other=[neighbour]).extend(straight(), 140.0)
        from repro.drc import check_trace_pair_clearance

        rep = check_trace_pair_clearance(result.trace, neighbour, RULES)
        assert rep.is_clean()

    def test_neighbour_reduces_capacity(self):
        # Hemmed in by traces on both sides, upper bound shrinks.
        n1 = Trace("n1", Polyline([Point(0, 8), Point(100, 8)]), width=1.0)
        n2 = Trace("n2", Polyline([Point(0, -8), Point(100, -8)]), width=1.0)
        free = extender().extension_upper_bound(straight())
        hemmed = extender(other=[n1, n2]).extension_upper_bound(straight())
        assert hemmed.achieved < free.achieved


class TestUpperBound:
    def test_upper_bound_exceeds_targeted_run(self):
        ub = extender().extension_upper_bound(straight())
        assert ub.achieved > 300.0

    def test_upper_bound_respects_area(self):
        small = rectangle(-5.0, -10.0, 105.0, 10.0)
        ub = extender(area=small).extension_upper_bound(straight())
        from repro.geometry import polyline_inside_polygon

        assert polyline_inside_polygon(ub.trace.path, small)

    def test_drc_clean_at_upper_bound(self):
        ub = extender().extension_upper_bound(straight())
        assert check_self_clearance(ub.trace, RULES).is_clean()
        assert check_segment_lengths(ub.trace, RULES).is_clean()


class TestMultiSegmentTraces:
    def test_bent_trace_extends(self):
        trace = Trace(
            "t", Polyline([Point(0, 0), Point(50, 0), Point(50, 30)]), width=1.0
        )
        area = rectangle(-30, -30, 90, 70)
        result = extender(area=area).extend(trace, 120.0)
        assert math.isclose(result.achieved, 120.0, abs_tol=1e-3)
        assert check_self_clearance(result.trace, RULES).is_clean()

    def test_135_degree_trace(self):
        trace = Trace(
            "t",
            Polyline([Point(0, 0), Point(40, 0), Point(70, 30), Point(110, 30)]),
            width=1.0,
        )
        area = rectangle(-30, -40, 150, 80)
        result = extender(area=area).extend(trace, 200.0)
        assert math.isclose(result.achieved, 200.0, abs_tol=1e-3)
        assert check_segment_lengths(result.trace, RULES).is_clean()


class TestConfig:
    def test_max_iterations_caps_work(self):
        result = extender(max_iterations=1).extend(straight(), 500.0)
        assert result.iterations <= 1

    def test_node_feet_flag_respected(self):
        # Very short trace where only node-to-node patterns fit.
        short = straight(7.0)
        with_feet = extender().extend(short, 12.0)
        without = extender(allow_node_feet=False).extend(short, 12.0)
        assert with_feet.achieved > without.achieved

    def test_custom_ldisc(self):
        result = extender(ldisc=1.0).extend(straight(), 130.0)
        assert math.isclose(result.achieved, 130.0, abs_tol=1e-3)
