"""Unit tests for the URA geometry (Fig. 6)."""

import math

import pytest

from repro.core import URA
from repro.geometry import Frame, Point, Segment


@pytest.fixture
def ura() -> URA:
    # Feet at 4 and 12, clearance half-width 2, outer border at 10.
    return URA(x_left=4.0, x_right=12.0, g=2.0, h_ob=10.0)


class TestBorders:
    def test_outer_rect(self, ura):
        assert ura.outer_rect() == (2.0, 0.0, 14.0, 10.0)

    def test_inner_rect(self, ura):
        assert ura.inner_rect() == (6.0, 0.0, 10.0, 6.0)

    def test_pattern_height_eq10(self, ura):
        assert ura.pattern_height() == 8.0

    def test_pattern_height_clamped_at_zero(self):
        assert URA(0, 4, 3.0, 2.0).pattern_height() == 0.0

    def test_has_inner_region(self, ura):
        assert ura.has_inner_region()

    def test_narrow_pattern_no_inner_region(self):
        assert not URA(0, 3, 2.0, 10.0).has_inner_region()

    def test_shallow_pattern_no_inner_region(self):
        assert not URA(0, 10, 2.0, 3.0).has_inner_region()

    def test_shrunk_to(self, ura):
        assert ura.shrunk_to(5.0).h_ob == 5.0

    def test_validates_feet(self):
        with pytest.raises(ValueError):
            URA(5, 5, 1, 10)

    def test_validates_g(self):
        with pytest.raises(ValueError):
            URA(0, 5, 0, 10)


class TestPointClassification:
    def test_strictly_inside_outer(self, ura):
        assert ura.point_inside_outer(Point(8, 5))

    def test_touching_outer_not_inside(self, ura):
        assert not ura.point_inside_outer(Point(2.0, 5))
        assert not ura.point_inside_outer(Point(8, 10.0))

    def test_below_axis_not_inside(self, ura):
        assert not ura.point_inside_outer(Point(8, -1))

    def test_inside_inner(self, ura):
        assert ura.point_inside_inner(Point(8, 3))

    def test_touching_inner_counts(self, ura):
        assert ura.point_inside_inner(Point(6.0, 3))

    def test_arm_strip_not_inside_inner(self, ura):
        assert not ura.point_inside_inner(Point(4, 3))

    def test_above_inner_top_not_inside(self, ura):
        assert not ura.point_inside_inner(Point(8, 7))


class TestPolygons:
    def test_three_arm_polygons(self, ura):
        assert len(ura.arm_polygons()) == 3

    def test_arm_union_covers_legs_and_hat(self, ura):
        arms = ura.arm_polygons()
        h = ura.pattern_height()

        def union_contains(p: Point) -> bool:
            return any(a.contains_point(p) for a in arms)

        assert union_contains(Point(4, h / 2))          # left leg
        assert union_contains(Point(12, h / 2))         # right leg
        assert union_contains(Point(8, h))              # hat
        assert not union_contains(Point(8, h / 2 - 2))  # inner hole

    def test_outer_polygon_area(self, ura):
        assert math.isclose(ura.outer_polygon().area(), 12 * 10)

    def test_to_world_applies_frame(self, ura):
        f = Frame.from_segment(Segment(Point(0, 0), Point(0, 20)), 1)
        world = ura.to_world(f)
        assert len(world) == 3
        # The segment runs along +y, so local +x maps to world +y.
        b = world[0].bounds()
        assert b[3] > b[1]
