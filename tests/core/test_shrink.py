"""Unit tests for URA shrinking (Alg. 2, Eqs. 10-13).

All scenarios are in a segment-local frame: the segment runs along the
x-axis, patterns extend into +y, and the routable boundary (when present)
is a large rectangle around everything.
"""

import math

import pytest

from repro.core import ShrinkEnvironment
from repro.geometry import Point, Polygon, rectangle

G = 2.0       # clearance half-width
H_MIN = 1.0   # minimum useful height
BIG = 50.0    # generous initial height


def env_of(*polys) -> ShrinkEnvironment:
    return ShrinkEnvironment(list(polys))


def boundary(height: float = 40.0) -> Polygon:
    return rectangle(-20.0, -height, 120.0, height)


class TestFreeSpace:
    def test_empty_env_returns_h_init(self):
        h = env_of().max_pattern_height(10, 20, G, 8.0, H_MIN)
        assert h == 8.0

    def test_boundary_limits_height(self):
        # Outer border may reach the boundary edge at y=40: h = 40 - g.
        h = env_of(boundary(40.0)).max_pattern_height(10, 20, G, BIG, H_MIN)
        assert math.isclose(h, 40.0 - G)

    def test_h_min_respected(self):
        h = env_of(boundary(2.5)).max_pattern_height(10, 20, G, BIG, H_MIN)
        # 2.5 - 2.0 = 0.5 < h_min -> no pattern.
        assert h == 0.0

    def test_h_init_below_h_min(self):
        assert env_of().max_pattern_height(10, 20, G, 0.5, H_MIN) == 0.0


class TestSidesShrinking:
    def test_obstacle_crossing_left_side(self):
        # Box crossing the vertical line x = 10 - g = 8 at y in [5, 7].
        box = rectangle(6.0, 5.0, 9.0, 7.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, BIG, H_MIN)
        # h_ob shrinks to the lowest crossing ordinate (5): h = 5 - 2 = 3.
        assert math.isclose(h, 3.0)

    def test_obstacle_crossing_right_side(self):
        box = rectangle(21.0, 6.0, 25.0, 9.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, BIG, H_MIN)
        assert math.isclose(h, 4.0)

    def test_obstacle_outside_sides_ignored(self):
        box = rectangle(30.0, 2.0, 35.0, 6.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 20.0, H_MIN)
        assert math.isclose(h, 20.0)

    def test_touching_side_does_not_shrink(self):
        # Box whose right edge lies exactly on the left side line x=8.
        box = rectangle(5.0, 2.0, 8.0, 6.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 20.0, H_MIN)
        assert math.isclose(h, 20.0)


class TestHatShrinking:
    def test_straddling_polygon_shrinks_to_lowest_inside_node(self):
        # Tall box over the middle: bottom nodes at y=6 inside, top outside.
        box = rectangle(13.0, 6.0, 17.0, 100.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 30.0, H_MIN)
        # h_ob <= 6 -> h = 4.
        assert math.isclose(h, 4.0)

    def test_iterative_shrinking_fig8(self):
        # First a straddler pulls h_ob to 20; that drops the inner top to
        # 20 - 2g = 16, newly exposing the second box (top at 17) which was
        # legally enclosed before; shrink below it entirely.
        tall = rectangle(14.0, 20.0, 16.0, 100.0)
        mid = rectangle(13.0, 12.0, 17.0, 17.0)
        h = env_of(boundary(), tall, mid).max_pattern_height(10, 20, G, 30.0, H_MIN)
        # h_ob <= 12 (below the whole mid box) -> h = 10.
        assert math.isclose(h, 10.0)


class TestInnerBorder:
    def test_enclosed_obstacle_allowed(self):
        # Small box strictly inside the inner border: pattern routes around.
        box = rectangle(13.0, 2.0, 17.0, 5.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 20.0, H_MIN)
        assert math.isclose(h, 20.0)

    def test_enclosed_obstacle_rejected_without_dp_mode(self):
        box = rectangle(13.0, 2.0, 17.0, 5.0)
        h = env_of(boundary(), box).max_pattern_height(
            10, 20, G, 20.0, H_MIN, allow_enclosed=False
        )
        # Must shrink below the box: h_ob <= 2 -> h = 0 < h_min.
        assert h == 0.0

    def test_obstacle_in_arm_strip_shrinks(self):
        # Box in the left arm column [8, 12] above the foot.
        box = rectangle(9.0, 6.0, 11.0, 9.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 20.0, H_MIN)
        # Whole polygon must go above the URA: h_ob <= 6 -> h = 4.
        assert math.isclose(h, 4.0)

    def test_narrow_pattern_cannot_enclose(self):
        # Feet only 2 apart (< 2g): no inner region, so the box (bottom at
        # y=2) forces h_ob <= 2, i.e. h = 0 — no pattern fits here.
        box = rectangle(10.5, 2.0, 11.5, 4.0)
        h = env_of(boundary(), box).max_pattern_height(10, 12, G, 20.0, H_MIN)
        assert h == 0.0

    def test_obstacle_below_axis_ignored(self):
        # "The area below line AD need not be checked."
        box = rectangle(12.0, -8.0, 18.0, -2.0)
        h = env_of(boundary(), box).max_pattern_height(10, 20, G, 20.0, H_MIN)
        assert math.isclose(h, 20.0)


class TestNonMonotonicity:
    """A valid height does not validate smaller heights (Sec. IV-B)."""

    OBSTACLE = rectangle(13.0, 3.0, 17.0, 6.0)

    def test_large_h_encloses(self):
        h = env_of(boundary(), self.OBSTACLE).max_pattern_height(
            10, 20, G, 20.0, H_MIN
        )
        assert math.isclose(h, 20.0)  # obstacle inside the inner border

    def test_small_h_init_forces_below(self):
        # Asking for h ~ 7 puts the hat *through* the obstacle: with
        # h_init=7, h_ob=9 and the inner top is 5 < box top 6 -> the box
        # violates the inner border -> shrink below it: h_ob <= 3 -> h=1.
        h = env_of(boundary(), self.OBSTACLE).max_pattern_height(
            10, 20, G, 7.0, H_MIN
        )
        assert math.isclose(h, 1.0)

    def test_h_init_just_above_enclosure_threshold(self):
        # h = 8 puts the inner top exactly at the box top (6 <= 6 with
        # tolerance): still enclosed.
        h = env_of(boundary(), self.OBSTACLE).max_pattern_height(
            10, 20, G, 8.0, H_MIN
        )
        assert math.isclose(h, 8.0)


class TestColumnBound:
    def test_bound_sees_arm_nodes(self):
        box = rectangle(9.0, 6.0, 11.0, 9.0)
        env = env_of(boundary(), box)
        assert math.isclose(env.column_node_bound(10.0, G), 6.0)

    def test_bound_ignores_far_nodes(self):
        box = rectangle(30.0, 6.0, 35.0, 9.0)
        env = env_of(box)
        assert env.column_node_bound(10.0, G) == math.inf

    def test_bound_is_admissible(self):
        # The exact height never exceeds the column bound minus g.
        box = rectangle(9.0, 6.0, 11.0, 9.0)
        env = env_of(boundary(), box)
        h = env.max_pattern_height(10, 20, G, BIG, H_MIN)
        assert h <= env.column_node_bound(10.0, G) - G + 1e-9

    def test_bound_ignores_nodes_below_axis(self):
        box = rectangle(9.0, -9.0, 11.0, -6.0)
        env = env_of(box)
        assert env.column_node_bound(10.0, G) == math.inf


class TestSideBound:
    def test_side_bound_finds_lowest_crossing(self):
        box = rectangle(6.0, 5.0, 9.0, 7.0)
        env = env_of(box)
        assert math.isclose(env.side_bound(8.0, 50.0), 5.0)

    def test_side_bound_none(self):
        env = env_of(rectangle(30.0, 5.0, 35.0, 7.0))
        assert env.side_bound(8.0, 50.0) == 50.0
