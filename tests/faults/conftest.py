"""Chaos-suite fixtures: clean fault state per test, small boards.

Every test runs with a guaranteed-clean injection state: no in-process
plan armed, no :data:`repro.faults.ENV_VAR` leaking in from the outer
environment.  Boards mirror the small single-group builders the server
tests use — fast to route, deterministic verdicts.
"""

from __future__ import annotations

import os

import pytest

import repro.faults as faults
from repro.geometry import Point, Polyline
from repro.model import Board, DesignRules, MatchGroup, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)

#: The fixed seeds every determinism-sensitive chaos test replays (the
#: CI chaos-smoke job advertises exactly these).
CHAOS_SEEDS = (0, 7, 1234)


def small_board(name: str = "b0", target: float = 115.0) -> Board:
    """A one-group board that routes to ``ok`` in well under a second."""
    board = Board.with_rect_outline(0, 0, 100, 45, RULES)
    board.name = name
    member = board.add_trace(
        Trace("s0", Polyline([Point(5, 15), Point(95, 15)]), width=1.0)
    )
    board.add_group(MatchGroup("bus", members=[member], target_length=target))
    return board


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """No plan armed before the test; none left armed after it."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.setattr(faults, "_active", None)
    monkeypatch.setattr(faults, "_env_cache", (None, None))
    yield
