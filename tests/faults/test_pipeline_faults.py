"""Injected faults against the session pipeline and batch executor.

The invariants under test are PR 5's, now provable on demand: every
board yields exactly one result whatever its pipeline does, a killed
worker process crashes only the board it was routing, and injected
crashes are attributed through the same error-record machinery as real
ones.
"""

import pytest

import repro.faults as faults
from repro.api import RoutingSession
from repro.faults import FaultInjected, FaultPlan, FaultSpec, activate

from conftest import CHAOS_SEEDS, small_board  # same-directory module


class TestStageFaults:
    def test_stage_raise_propagates_without_capture(self):
        plan = FaultPlan("p", specs=[FaultSpec(site="stage.match", mode="raise")])
        with activate(plan):
            with pytest.raises(FaultInjected):
                RoutingSession(small_board(), config="fast").run()

    def test_stage_raise_is_captured_like_a_real_crash(self):
        plan = FaultPlan("p", specs=[FaultSpec(site="stage.match", mode="raise")])
        with activate(plan):
            result = RoutingSession(small_board(), config="fast").run(
                capture_errors=True
            )
        assert result.status == "crashed"
        assert result.error["type"] == "FaultInjected"
        assert result.error["stage"] == "match"
        # The stages before the injection point kept their records.
        assert [record.name for record in result.stages][-1] == "match"

    def test_stage_slow_changes_timing_not_outcome(self):
        plan = FaultPlan(
            "p",
            specs=[
                FaultSpec(site="stage.match", mode="slow", delay_s=0.05)
            ],
        )
        clean = RoutingSession(small_board(), config="fast").run()
        with activate(plan):
            slowed = RoutingSession(small_board(), config="fast").run()
        assert slowed.status == clean.status == "ok"
        match = next(r for r in slowed.stages if r.name == "match")
        assert match.runtime >= 0.05

    def test_no_plan_costs_nothing_and_changes_nothing(self):
        result = RoutingSession(small_board(), config="fast").run()
        assert result.status == "ok"


class TestBatchIsolation:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_serial_batch_survives_matched_crash(self, seed):
        """One injected stage crash ⇒ that board crashed, the rest ok —
        and which board is hit is pinned by ``match``, not chance."""
        boards = [small_board(f"board-{i}") for i in range(4)]
        plan = FaultPlan(
            "one-victim",
            seed=seed,
            specs=[
                FaultSpec(site="stage.match", mode="raise", match="board-2")
            ],
        )
        with activate(plan):
            results = RoutingSession.run_many(boards, config="fast")
        assert len(results) == len(boards)
        statuses = {r.board: r.status for r in results}
        assert statuses["board-2"] == "crashed"
        assert all(
            status == "ok"
            for name, status in statuses.items()
            if name != "board-2"
        )
        assert results[2].error["type"] == "FaultInjected"

    def test_worker_kill_crashes_only_its_board(self):
        """``kill`` hard-exits the worker process mid-board (SIGKILL
        semantics: no cleanup, no exception) — the executor rebuilds the
        pool, attributes the death to the one board in flight, and every
        other board still routes ok.  The plan crosses into the worker
        processes via the environment."""
        boards = [small_board(f"board-{i}") for i in range(4)]
        plan = FaultPlan(
            "assassin",
            specs=[
                FaultSpec(site="executor.worker", mode="kill", match="board-1")
            ],
        )
        with activate(plan, env=True):
            results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert len(results) == len(boards)
        statuses = {r.board: r.status for r in results}
        assert statuses["board-1"] == "crashed"
        assert all(
            status == "ok"
            for name, status in statuses.items()
            if name != "board-1"
        )

    def test_worker_raise_is_captured_in_worker(self):
        boards = [small_board(f"board-{i}") for i in range(3)]
        plan = FaultPlan(
            "p",
            specs=[
                FaultSpec(site="executor.worker", mode="raise", match="board-0")
            ],
        )
        with activate(plan, env=True):
            results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert results[0].status == "crashed"
        assert results[0].error["type"] == "FaultInjected"
        assert [r.status for r in results[1:]] == ["ok", "ok"]

    def test_worker_hang_hits_the_timeout_path(self):
        """A hung worker burns its per-board budget, becomes a crashed
        row with the timeout recorded, and does not stall the batch."""
        boards = [small_board(f"board-{i}") for i in range(3)]
        plan = FaultPlan(
            "tarpit",
            specs=[
                FaultSpec(
                    site="executor.worker",
                    mode="hang",
                    match="board-2",
                    delay_s=60.0,
                )
            ],
        )
        with activate(plan, env=True):
            results = RoutingSession.run_many(
                boards, config="fast", workers=2, timeout=3.0
            )
        statuses = {r.board: r.status for r in results}
        assert statuses["board-2"] == "crashed"
        assert "timeout" in (results[2].error["message"] or "").lower()
        assert all(
            status == "ok"
            for name, status in statuses.items()
            if name != "board-2"
        )
