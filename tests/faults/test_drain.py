"""SIGTERM graceful drain, end to end: a real ``repro serve`` process,
a request in flight, the deploy stop signal — and the contract that the
in-flight request finishes, the client reads a complete body, and the
daemon exits 0.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.faults import ENV_VAR, FaultPlan, FaultSpec
from repro.io import board_to_dict

from conftest import small_board  # same-directory module

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def spawn_serve(tmp_path, extra_env=None, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    # The daemon announces its ephemeral endpoint on the first line.
    line = process.stdout.readline()
    assert "listening on" in line, f"unexpected serve banner: {line!r}"
    url = line.split("listening on ", 1)[1].split()[0]
    return process, url


@pytest.mark.slow
class TestSigtermDrain:
    def test_inflight_route_finishes_and_exit_is_zero(self, tmp_path):
        # Slow the pipeline down (deterministically, via the env-armed
        # fault plan) so the POST is still in flight when SIGTERM lands.
        plan = FaultPlan(
            "slow-route",
            specs=[FaultSpec(site="stage.match", mode="slow", delay_s=1.5)],
        )
        process, url = spawn_serve(tmp_path, {ENV_VAR: plan.to_json()})
        outcome = {}

        def route_one():
            body = json.dumps(
                {"board": board_to_dict(small_board("inflight")), "preset": "fast"}
            ).encode()
            request = urllib.request.Request(
                url + "/route",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as resp:
                    outcome["status"] = resp.status
                    outcome["payload"] = json.loads(resp.read())
            except Exception as exc:  # surfaced by the main thread
                outcome["error"] = exc

        try:
            thread = threading.Thread(target=route_one)
            thread.start()
            time.sleep(0.6)  # the request is inside its 1.5 s slow stage
            process.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert not thread.is_alive()
            returncode = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        assert "error" not in outcome, f"in-flight request died: {outcome}"
        # The complete body arrived: a full envelope with the verdict.
        assert outcome["status"] == 200
        assert outcome["payload"]["kind"] == "route_response"
        assert outcome["payload"]["status"] == "ok"
        assert returncode == 0  # drained exit, not a crash

    def test_idle_server_exits_zero_promptly(self, tmp_path):
        process, url = spawn_serve(tmp_path)
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                assert resp.status == 200
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert returncode == 0
