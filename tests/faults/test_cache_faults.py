"""Injected faults against the result cache: corruption, exhaustion,
unwritable stores, and the LRU eviction race.

The store's contract under fire: corruption is a miss with the evidence
quarantined, a store that cannot be written degrades instead of raising,
and a concurrent evictor stealing an entry is benign.
"""

import json
import os

import pytest

from repro.cache import QUARANTINE_DIR, ResultCache
from repro.faults import FaultPlan, FaultSpec, activate

from conftest import CHAOS_SEEDS  # same-directory module

KEY_A = "a" * 64
KEY_B = "b" * 64
PAYLOAD = {"result": {"status": "ok", "board": "x"}, "routed_board": None}


def torn_plan(**kwargs) -> FaultPlan:
    return FaultPlan(
        "torn", specs=[FaultSpec(site="cache.write", mode="torn", **kwargs)]
    )


class TestCorruption:
    def test_torn_write_quarantines_then_repopulates(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with activate(torn_plan(max_fires=1)):
            path = cache.put(KEY_A, PAYLOAD)
        # The torn entry sits at the *final* path — exactly the
        # artifact a killed non-atomic writer leaves behind.
        assert os.path.exists(path)
        with open(path) as fh:
            with pytest.raises(json.JSONDecodeError):
                json.load(fh)
        assert cache.get(KEY_A) is None  # corruption is a miss...
        assert not os.path.exists(path)  # ...and the entry is repaired
        qdir = tmp_path / "cache" / QUARANTINE_DIR
        assert len(list(qdir.iterdir())) == 1  # ...with the bytes kept
        cache.put(KEY_A, PAYLOAD)  # plan max_fires exhausted: clean write
        assert cache.get(KEY_A) == PAYLOAD
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["quarantined"] == 1
        assert stats["mode"] == "ok"  # corruption degrades nothing

    def test_garbage_write_is_also_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        plan = FaultPlan(
            "garbage",
            specs=[FaultSpec(site="cache.write", mode="garbage", max_fires=1)],
        )
        with activate(plan):
            cache.put(KEY_A, PAYLOAD)
        assert cache.get(KEY_A) is None
        assert cache.stats()["quarantined"] == 1

    def test_read_garbage_corrupts_then_real_path_recovers(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(KEY_A, PAYLOAD)
        plan = FaultPlan(
            "bitrot",
            specs=[FaultSpec(site="cache.read", mode="garbage", max_fires=1)],
        )
        with activate(plan):
            assert cache.get(KEY_A) is None  # the injected bitrot read
        assert cache.stats()["corrupt"] == 1
        assert cache.put(KEY_A, PAYLOAD) is not None
        assert cache.get(KEY_A) == PAYLOAD

    def test_quarantined_files_survive_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with activate(torn_plan(max_fires=1)):
            cache.put(KEY_A, PAYLOAD)
        cache.get(KEY_A)  # quarantines
        cache.put(KEY_B, PAYLOAD)
        assert cache.clear() == 1  # only the healthy entry
        qdir = tmp_path / "cache" / QUARANTINE_DIR
        assert len(list(qdir.iterdir())) == 1


class TestDegradedMode:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_enospc_degrades_instead_of_raising(self, tmp_path, seed):
        cache = ResultCache(str(tmp_path / "cache"))
        plan = FaultPlan(
            "full-disk",
            seed=seed,
            specs=[FaultSpec(site="cache.write", mode="enospc")],
        )
        assert cache.put(KEY_A, PAYLOAD) is not None
        with activate(plan):
            assert cache.put(KEY_B, PAYLOAD) is None  # no raise
        stats = cache.stats()
        assert stats["mode"] == "degraded"
        assert "no space left" in stats["degraded_reason"].lower()
        assert stats["put_errors"] == 1
        # Reads still serve; later puts are recorded no-ops even after
        # the plan is gone (degradation is sticky — the disk didn't fix
        # itself because the test block ended).
        assert cache.get(KEY_A) == PAYLOAD
        assert cache.put(KEY_B, PAYLOAD) is None

    def test_uncreatable_directory_degrades_at_init(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir's parent should be")
        cache = ResultCache(str(blocker / "cache"))
        assert cache.degraded is not None
        assert cache.put(KEY_A, PAYLOAD) is None  # no raise, no entry
        assert cache.get(KEY_A) is None
        assert cache.stats()["mode"] == "degraded"


class TestEvictionRace:
    def _filled_cache(self, tmp_path) -> ResultCache:
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=10_000_000)
        for i in range(4):
            cache.put(f"{i:x}" * 64, PAYLOAD)
        return cache

    def test_concurrent_evictor_stealing_an_entry_is_benign(
        self, tmp_path, monkeypatch
    ):
        """A second evictor (another thread or daemon on the same
        store) unlinking an entry first must not crash the sweep,
        must still count the freed bytes toward the budget, and must
        not claim the eviction as ours."""
        cache = self._filled_cache(tmp_path)
        real_unlink = os.unlink
        stolen = []

        def racing_unlink(path, *args, **kwargs):
            if not stolen:
                stolen.append(path)
                real_unlink(path)  # the "other evictor" wins the race
            return real_unlink(path)  # ours now sees FileNotFoundError

        monkeypatch.setattr(os, "unlink", racing_unlink)
        cache.max_bytes = 1  # force a full sweep
        evicted = cache._evict_if_needed()
        stats = cache.stats()
        assert stats["entries"] == 0  # the sweep completed regardless
        assert evicted == 3  # the stolen entry is not double-counted
        assert stats["evictions"] == 3

    def test_eviction_still_converges_under_budget(self, tmp_path):
        cache = self._filled_cache(tmp_path)
        entry_bytes = cache.stats()["bytes"] // 4
        cache.max_bytes = int(entry_bytes * 2.5)
        cache._evict_if_needed()
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] <= cache.max_bytes
