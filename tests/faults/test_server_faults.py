"""Transport chaos against a live daemon: 503s, stalls, refusals,
mid-stream disconnects, dead servers, degraded caches, deadlines.

Each test runs its own in-process daemon on an ephemeral port so fault
plans and cache state never bleed between tests.
"""

import random
import time

import pytest

from repro.faults import FaultPlan, FaultSpec, activate, stable_report_bytes
from repro.server import make_http_server
from repro.server.client import ServerClient, ServerUnavailable, TransportError

from conftest import CHAOS_SEEDS, small_board  # same-directory module


@pytest.fixture
def server(tmp_path):
    srv = make_http_server(
        cache_dir=str(tmp_path / "cache"), port=0
    ).start_background()
    try:
        yield srv
    finally:
        srv.shutdown(drain_timeout=5.0)


def overload_plan(fires: int, **kwargs) -> FaultPlan:
    return FaultPlan(
        "overload",
        specs=[
            FaultSpec(
                site="transport.response",
                mode="http_503",
                max_fires=fires,
                **kwargs,
            )
        ],
    )


class TestRetries:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_503_storm_is_absorbed_by_backoff(self, server, seed):
        with activate(overload_plan(fires=2)):
            client = ServerClient(
                server.url,
                retries=3,
                backoff_base=0.01,
                backoff_cap=0.05,
                rng=random.Random(seed),
            )
            resp = client.healthz()
        assert resp.ok and resp.payload["ok"] is True
        assert client.retry_count == 2  # exactly the injected 503s

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_backoff_schedule_is_seed_deterministic(self, seed, monkeypatch):
        """Two clients with the same rng seed produce byte-identical
        backoff schedules; a different seed produces a different one."""

        def schedule(client_seed: int) -> tuple:
            client = ServerClient(
                "http://example.invalid",
                retries=4,
                rng=random.Random(client_seed),
            )
            return tuple(client._backoff_s(n) for n in range(1, 5))

        assert schedule(seed) == schedule(seed)
        assert schedule(seed) != schedule(seed + 1)
        # And the capped-exponential envelope holds: uniform(0, min(cap,
        # base * 2^(n-1))).
        for n, pause in enumerate(schedule(seed), start=1):
            assert 0.0 <= pause <= min(2.0, 0.1 * (2 ** (n - 1)))

    def test_retried_route_artifact_is_stable_identical(self, server, tmp_path):
        """A route that survived a 503 + retry produces the same
        artifact (modulo wall-clock keys) as one that never saw a fault
        — replaying an idempotent request cannot change the answer."""
        board = small_board("retried")
        with activate(overload_plan(fires=1, match="/route")):
            client = ServerClient(
                server.url, retries=2, backoff_base=0.01, rng=random.Random(0)
            )
            faulted = client.route(board, preset="fast")
        assert faulted.ok and client.retry_count == 1
        clean_srv = make_http_server(
            cache_dir=str(tmp_path / "clean-cache"), port=0
        ).start_background()
        try:
            clean = ServerClient(clean_srv.url).route(board, preset="fast")
        finally:
            clean_srv.shutdown(drain_timeout=5.0)
        assert faulted.payload["key"] == clean.payload["key"]
        assert stable_report_bytes(
            faulted.payload["result"]
        ) == stable_report_bytes(clean.payload["result"])

    def test_client_side_refusal_is_retried(self, server):
        plan = FaultPlan(
            "flaky-network",
            specs=[
                FaultSpec(site="transport.request", mode="refuse", max_fires=1)
            ],
        )
        with activate(plan):
            client = ServerClient(
                server.url, retries=2, backoff_base=0.01, rng=random.Random(0)
            )
            assert client.healthz().ok
        assert client.retry_count == 1

    def test_refusal_with_no_retries_is_typed(self, server):
        plan = FaultPlan(
            "hard-refusal",
            specs=[FaultSpec(site="transport.request", mode="refuse")],
        )
        with activate(plan):
            client = ServerClient(server.url, retries=0)
            with pytest.raises(ServerUnavailable) as info:
                client.healthz()
        assert info.value.attempts == 1

    def test_server_stall_trips_timeout_then_recovers(self, server):
        plan = FaultPlan(
            "stall",
            specs=[
                FaultSpec(
                    site="transport.response",
                    mode="stall",
                    delay_s=1.5,
                    max_fires=1,
                )
            ],
        )
        with activate(plan):
            client = ServerClient(
                server.url,
                timeout=0.4,
                retries=2,
                backoff_base=0.01,
                rng=random.Random(0),
            )
            resp = client.healthz()
        assert resp.ok
        assert client.retry_count >= 1


class TestDeadServer:
    def test_unreachable_server_is_typed_within_deadline(self):
        client = ServerClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=1.0,
            retries=5,
            backoff_base=0.05,
            backoff_cap=0.2,
            deadline=2.0,
            rng=random.Random(0),
        )
        started = time.monotonic()
        with pytest.raises(ServerUnavailable) as info:
            client.healthz()
        elapsed = time.monotonic() - started
        assert elapsed < 6.0  # bounded by the budget, not retries x timeout
        assert info.value.attempts >= 1
        assert info.value.url.startswith("http://127.0.0.1:9")
        assert info.value.cause is not None
        # It is a typed OSError subclass — callers catch TransportError.
        assert isinstance(info.value, TransportError)

    def test_http_errors_are_verdicts_not_retried(self, server):
        """A 400 envelope must come straight back — retrying a verdict
        would double-bill non-idempotent work elsewhere."""
        client = ServerClient(server.url, retries=3, rng=random.Random(0))
        resp = client.route({"not": "a board"}, preset="fast")
        assert resp.status == 400
        assert client.retry_count == 0


class TestStreamFaults:
    def test_mid_stream_disconnect_is_typed(self, server):
        plan = FaultPlan(
            "proxy-crash",
            specs=[
                FaultSpec(site="transport.stream", mode="disconnect", skip=1)
            ],
        )
        boards = [small_board(f"s{i}") for i in range(3)]
        with activate(plan):
            client = ServerClient(server.url)
            events = []
            with pytest.raises(TransportError, match="truncated"):
                for event in client.route_batch(boards, preset="fast"):
                    events.append(event)
        # The stream delivered complete events up to the cut, then the
        # truncation surfaced as a typed transport error — never a
        # silent short read that looks like a finished batch.
        assert 1 <= len(events) < 4
        assert all(event["kind"] == "route_event" for event in events)
        assert not any(event.get("event") == "batch_done" for event in events)


class TestDegradedServing:
    def test_unusable_cache_dir_serves_degraded(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        srv = make_http_server(
            cache_dir=str(blocker / "cache"), port=0
        ).start_background()
        try:
            client = ServerClient(srv.url)
            health = client.healthz()
            assert health.ok and health.payload["ok"] is True
            assert health.payload["cache"] == "degraded"
            # Routing still answers — twice, both misses (nothing can
            # be cached), both correct.
            first = client.route(small_board("nocache"), preset="fast")
            second = client.route(small_board("nocache"), preset="fast")
            assert first.ok and second.ok
            assert first.payload["cache"] == "miss"
            assert second.payload["cache"] == "miss"
            stats = client.stats()
            assert stats.payload["cache"]["mode"] == "degraded"
        finally:
            srv.shutdown(drain_timeout=5.0)

    def test_enospc_mid_flight_degrades_but_keeps_serving(self, tmp_path):
        srv = make_http_server(
            cache_dir=str(tmp_path / "cache"), port=0
        ).start_background()
        plan = FaultPlan(
            "disk-fills-up",
            specs=[FaultSpec(site="cache.write", mode="enospc", max_fires=1)],
        )
        try:
            client = ServerClient(srv.url)
            assert client.healthz().payload["cache"] == "ok"
            with activate(plan):
                resp = client.route(small_board("during-enospc"), preset="fast")
            assert resp.ok  # the route answered despite the failed put
            assert client.healthz().payload["cache"] == "degraded"
        finally:
            srv.shutdown(drain_timeout=5.0)


class TestRequestDeadline:
    def test_overrunning_route_is_504(self, tmp_path):
        srv = make_http_server(
            cache_dir=str(tmp_path / "cache"),
            port=0,
            request_deadline=0.2,
        ).start_background()
        plan = FaultPlan(
            "molasses",
            specs=[FaultSpec(site="stage.match", mode="slow", delay_s=2.0)],
        )
        try:
            client = ServerClient(srv.url, retries=0)
            with activate(plan):
                resp = client.route(small_board("too-slow"), preset="fast")
            assert resp.status == 504
            assert resp.payload["error"]["type"] == "DeadlineExceeded"
            # A fast request on the same server still answers inside
            # the deadline.
            quick = client.route(small_board("quick-one"), preset="fast")
            assert quick.ok
        finally:
            srv.shutdown(drain_timeout=5.0)
