"""``route --remote`` resilience: a dead daemon is an operational
error with a clean envelope and exit code 2 — never a traceback."""

import json
import os
import subprocess
import sys

import pytest

from repro.io import save_board

from conftest import small_board  # same-directory module

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def run_cli(*args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture
def board_file(tmp_path) -> str:
    path = str(tmp_path / "board.json")
    save_board(small_board("cli-remote"), path)
    return path


class TestRemoteRouteFailureModes:
    def test_connection_refused_is_exit_2_with_envelope(self, board_file):
        proc = run_cli(
            "route",
            board_file,
            "--remote",
            "http://127.0.0.1:9",  # nothing listens on the discard port
            "--remote-retries",
            "1",
            "--remote-timeout",
            "5",
            "--json",
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "error:" in proc.stderr
        envelope = json.loads(proc.stdout)
        assert envelope["kind"] == "error_response"
        assert envelope["error"]["type"] == "ServerUnavailable"
        assert "127.0.0.1:9" in envelope["error"]["message"]

    def test_connection_refused_without_json_is_one_stderr_line(
        self, board_file
    ):
        proc = run_cli(
            "route",
            board_file,
            "--remote",
            "http://127.0.0.1:9",
            "--remote-retries",
            "0",
            "--remote-timeout",
            "5",
        )
        assert proc.returncode == 2
        assert proc.stdout == ""
        assert proc.stderr.startswith("error: http://127.0.0.1:9")
        assert "Traceback" not in proc.stderr
