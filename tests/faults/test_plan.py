"""FaultPlan semantics: determinism by seed, gating, serialisation."""

import os

import pytest

import repro.faults as faults
from repro.faults import ENV_VAR, FaultInjected, FaultPlan, FaultSpec, activate

from conftest import CHAOS_SEEDS  # same-directory module


def probe_sequence(plan: FaultPlan, calls: int = 40) -> list:
    """The fire/no-fire decision sequence for ``calls`` probes of one
    site — the thing that must be identical run-to-run."""
    return [plan.decide("stage.match", board=f"b{i}") is not None for i in range(calls)]


class TestDeterminism:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_document_same_decisions(self, seed):
        spec = FaultSpec(site="stage.match", mode="raise", probability=0.3)
        first = probe_sequence(FaultPlan("p", seed=seed, specs=[spec]))
        second = probe_sequence(FaultPlan("p", seed=seed, specs=[spec]))
        assert first == second
        assert any(first) and not all(first)  # 0.3 actually gates

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_json_round_trip_replays_identically(self, seed):
        plan = FaultPlan(
            "p",
            seed=seed,
            specs=[
                FaultSpec(site="stage.match", mode="raise", probability=0.4),
                FaultSpec(site="cache.write", mode="torn", probability=0.5),
            ],
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert probe_sequence(plan) == probe_sequence(clone)
        assert plan.to_json() == clone.to_json()  # canonical both ways

    def test_different_seeds_differ(self):
        spec = FaultSpec(site="stage.match", mode="raise", probability=0.5)
        sequences = {
            tuple(probe_sequence(FaultPlan("p", seed=seed, specs=[spec])))
            for seed in range(8)
        }
        assert len(sequences) > 1

    def test_specs_draw_independently(self):
        """Adding a second spec must not perturb the first one's
        sequence — each spec owns its RNG."""
        a = FaultSpec(site="stage.match", mode="raise", probability=0.3)
        b = FaultSpec(site="stage.drc", mode="raise", probability=0.7)
        alone = probe_sequence(FaultPlan("p", seed=3, specs=[a]))
        paired_plan = FaultPlan("p", seed=3, specs=[a, b])
        paired = []
        for i in range(40):
            paired.append(paired_plan.decide("stage.match", board=f"b{i}") is not None)
            paired_plan.decide("stage.drc", board=f"b{i}")  # interleaved draws
        assert alone == paired


class TestGating:
    def test_always_on_fires_every_call(self):
        plan = FaultPlan("p", specs=[FaultSpec(site="s", mode="raise")])
        assert all(plan.decide("s") is not None for _ in range(5))

    def test_skip_offsets_first_fire(self):
        plan = FaultPlan(
            "p", specs=[FaultSpec(site="s", mode="raise", skip=2)]
        )
        assert [plan.decide("s") is not None for _ in range(4)] == [
            False,
            False,
            True,
            True,
        ]

    def test_max_fires_caps(self):
        plan = FaultPlan(
            "p", specs=[FaultSpec(site="s", mode="raise", max_fires=2)]
        )
        assert [plan.decide("s") is not None for _ in range(4)] == [
            True,
            True,
            False,
            False,
        ]
        assert plan.fire_counts() == {"s:raise": 2}

    def test_match_restricts_to_context_substring(self):
        plan = FaultPlan(
            "p", specs=[FaultSpec(site="s", mode="raise", match="victim")]
        )
        assert plan.decide("s", board="innocent") is None
        assert plan.decide("s", board="the-victim-board") is not None

    def test_wrong_site_never_fires(self):
        plan = FaultPlan("p", specs=[FaultSpec(site="s", mode="raise")])
        assert plan.decide("other") is None

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec"):
            FaultSpec.from_dict({"site": "s", "mode": "raise", "typo": 1})

    def test_non_plan_document_rejected(self):
        with pytest.raises(ValueError, match="not a fault plan"):
            FaultPlan.from_dict({"kind": "route_response"})


class TestActivation:
    def test_no_plan_means_no_spec(self):
        assert faults.decide("stage.match") is None

    def test_activate_scopes_and_restores(self):
        plan = FaultPlan("p", specs=[FaultSpec(site="s", mode="raise")])
        with activate(plan):
            assert faults.active_plan() is plan
            with pytest.raises(FaultInjected) as info:
                faults.inject("s")
            assert info.value.site == "s" and info.value.plan == "p"
        assert faults.active_plan() is None

    def test_env_activation_and_rearming(self, monkeypatch):
        plan = FaultPlan("via-env", specs=[FaultSpec(site="s", mode="raise")])
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert faults.active_plan().name == "via-env"
        # Re-arming with a different document must reload, not serve
        # the cached parse of the old value.
        other = FaultPlan("rearmed", specs=[])
        monkeypatch.setenv(ENV_VAR, other.to_json())
        assert faults.active_plan().name == "rearmed"

    def test_env_at_file_reference(self, tmp_path, monkeypatch):
        plan = FaultPlan("from-file", specs=[FaultSpec(site="s", mode="raise")])
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        assert faults.active_plan().name == "from-file"

    def test_activate_env_exports_and_cleans_up(self):
        plan = FaultPlan("exported", specs=[])
        with activate(plan, env=True):
            assert os.environ[ENV_VAR] == plan.to_json()
        assert ENV_VAR not in os.environ
