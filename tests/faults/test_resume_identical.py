"""The crash-consistency invariant: SIGKILL a corpus sweep mid-run,
``--resume`` it, and the final report is byte-identical (under the
stable projection of :mod:`repro.faults.invariants`) to an
uninterrupted run's.

This is the strongest end-to-end claim the robustness stack makes: the
per-case artifacts are written atomically (``repro.io``), resume trusts
only complete artifacts, and the aggregate is a pure function of the
case outcomes — so a kill at *any* instant loses at most in-flight
work, never correctness.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faults import ENV_VAR, FaultPlan, FaultSpec, stable_report_bytes

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

#: Slows each case enough that the SIGKILL below lands mid-sweep
#: deterministically (the quick corpus otherwise finishes in <1 s).
SLOW_PLAN = FaultPlan(
    "stretch",
    specs=[FaultSpec(site="stage.match", mode="slow", delay_s=0.25)],
)


def corpus_cmd(outdir: str, resume: bool = False) -> list:
    cmd = [sys.executable, "-m", "repro", "corpus", "run", "--quick", "--json"]
    if resume:
        cmd += ["--resume", outdir]
    else:
        cmd += ["--outdir", outdir]
    return cmd


def run_env(slow: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    if slow:
        env[ENV_VAR] = SLOW_PLAN.to_json()
    return env


@pytest.mark.slow
class TestKillResumeIdentical:
    def test_sigkill_then_resume_matches_uninterrupted_run(self, tmp_path):
        baseline_dir = str(tmp_path / "uninterrupted")
        subprocess.run(
            corpus_cmd(baseline_dir),
            env=run_env(slow=False),
            check=True,
            capture_output=True,
            timeout=300,
        )

        # Second sweep: SIGKILL it once a few case artifacts exist but
        # before the sweep can finish.
        killed_dir = str(tmp_path / "killed")
        results_dir = os.path.join(killed_dir, "results")
        process = subprocess.Popen(
            corpus_cmd(killed_dir),
            env=run_env(slow=True),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                done = (
                    len(os.listdir(results_dir))
                    if os.path.isdir(results_dir)
                    else 0
                )
                if done >= 2:
                    break
                if process.poll() is not None:
                    pytest.fail(
                        "sweep finished before the kill could land; "
                        "increase the slow plan's delay"
                    )
                time.sleep(0.05)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert process.returncode == -signal.SIGKILL
        # The kill genuinely interrupted it: no aggregate report exists.
        assert not os.path.exists(
            os.path.join(killed_dir, "corpus_report.json")
        )
        partial = len(os.listdir(results_dir))
        assert 0 < partial < 12  # some cases done, not all

        # Resume: only the missing cases route, then the aggregate is
        # rebuilt from the full artifact set.
        subprocess.run(
            corpus_cmd(killed_dir, resume=True),
            env=run_env(slow=False),
            check=True,
            capture_output=True,
            timeout=300,
        )

        with open(os.path.join(baseline_dir, "corpus_report.json")) as fh:
            baseline = json.load(fh)
        with open(os.path.join(killed_dir, "corpus_report.json")) as fh:
            resumed = json.load(fh)
        assert stable_report_bytes(resumed) == stable_report_bytes(baseline)

    def test_every_surviving_artifact_is_complete_json(self, tmp_path):
        """Atomic artifact writes mean a SIGKILL can never leave a torn
        per-case file — whatever exists after the kill parses."""
        outdir = str(tmp_path / "killed")
        results_dir = os.path.join(outdir, "results")
        process = subprocess.Popen(
            corpus_cmd(outdir),
            env=run_env(slow=True),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if (
                    os.path.isdir(results_dir)
                    and len(os.listdir(results_dir)) >= 1
                ):
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        for name in os.listdir(results_dir):
            with open(os.path.join(results_dir, name)) as fh:
                document = json.load(fh)  # parses or the write tore
            assert isinstance(document, dict)
