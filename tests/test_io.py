"""Tests for board JSON serialization."""

import math

import pytest

from repro.bench import make_msdtw_case, make_table1_case
from repro.io import (
    board_from_dict,
    board_from_json,
    board_to_dict,
    board_to_json,
    load_board,
    save_board,
)


class TestRoundTrip:
    def test_table1_board_round_trips(self):
        board, _ = make_table1_case(1)
        restored = board_from_json(board_to_json(board))
        assert len(restored.traces) == len(board.traces)
        assert len(restored.obstacles) == len(board.obstacles)
        assert len(restored.groups) == 1
        for a, b in zip(board.traces, restored.traces):
            assert a.name == b.name
            assert math.isclose(a.length(), b.length(), rel_tol=1e-12)

    def test_board_name_round_trips(self):
        board, _ = make_table1_case(1)
        board.name = "case1"
        assert board_from_json(board_to_json(board)).name == "case1"
        # Pre-name documents load with an empty name.
        data = board_to_dict(board)
        del data["name"]
        assert board_from_dict(data).name == ""

    def test_pair_board_round_trips(self):
        board, pair = make_msdtw_case()
        restored = board_from_json(board_to_json(board))
        rp = restored.pair_by_name(pair.name)
        assert rp.rule == pair.rule
        assert rp.extra_rules == pair.extra_rules
        assert math.isclose(rp.length(), pair.length(), rel_tol=1e-12)
        assert math.isclose(rp.skew(), pair.skew(), abs_tol=1e-12)

    def test_rules_and_dras_preserved(self):
        board, _ = make_msdtw_case()
        restored = board_from_json(board_to_json(board))
        assert restored.rules.default == board.rules.default
        assert len(restored.rules.areas) == len(board.rules.areas)
        assert restored.rules.areas[0].rules.dgap == board.rules.areas[0].rules.dgap

    def test_routable_areas_preserved(self):
        board, pair = make_msdtw_case()
        restored = board_from_json(board_to_json(board))
        area = restored.routable_areas[pair.name]
        assert math.isclose(
            area.area(), board.routable_areas[pair.name].area(), rel_tol=1e-12
        )

    def test_group_membership_rebound(self):
        board, _ = make_table1_case(2)
        restored = board_from_json(board_to_json(board))
        group = restored.groups[0]
        assert group.members[0] is restored.traces[0]
        assert group.target_length == board.groups[0].target_length

    def test_file_round_trip(self, tmp_path):
        board, _ = make_table1_case(3)
        path = save_board(board, str(tmp_path / "board.json"))
        restored = load_board(path)
        assert len(restored.traces) == len(board.traces)

    def test_routing_after_reload(self, tmp_path):
        from repro import LengthMatchingRouter, check_board

        board, spec = make_table1_case(4)
        restored = board_from_json(board_to_json(board))
        report = LengthMatchingRouter(restored).match_group(restored.groups[0])
        assert report.max_error() < 0.06
        assert check_board(restored).is_clean()


class TestValidation:
    def test_unknown_version_rejected(self):
        board, _ = make_table1_case(1)
        data = board_to_dict(board)
        data["version"] = 999
        with pytest.raises(ValueError):
            board_from_dict(data)

    def test_missing_member_rejected(self):
        board, _ = make_table1_case(1)
        data = board_to_dict(board)
        data["groups"][0]["members"].append("ghost")
        with pytest.raises(ValueError):
            board_from_dict(data)
