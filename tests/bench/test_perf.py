"""Smoke tests for the perf-regression bench (``repro bench --perf``)."""

import json

import pytest

from repro.bench.perf import (
    check_perf_guard,
    make_drc_board,
    run_perf,
    run_perf_guard,
    run_profile,
)
from repro.drc import check_board
from repro.io import drc_report_to_dict


@pytest.mark.smoke
class TestRunPerfQuick:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("perf") / "BENCH_perf.json"
        payload = run_perf(quick=True, out=str(out), verbose=False)
        with open(out, "r", encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == payload
        return payload

    def test_structure(self, payload):
        assert payload["kind"] == "BENCH_perf"
        assert payload["quick"] is True
        assert set(payload["phases"]) == {
            "dtw",
            "drc",
            "extension",
            "extension_breakdown",
            "session",
            "server",
            "server_faults",
        }
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["total_s"] > 0

    def test_dtw_phase(self, payload):
        rows = payload["phases"]["dtw"]
        assert rows and all(r["identical"] for r in rows)
        assert all(r["reference_s"] > 0 for r in rows)

    def test_drc_phase(self, payload):
        rows = payload["phases"]["drc"]
        assert rows and all(r["identical"] for r in rows)
        assert all(r["violations"] == 0 for r in rows)
        # The grid path must already win clearly at the smallest scale.
        assert rows[0]["speedup"] > 5.0

    def test_session_phase(self, payload):
        rows = payload["phases"]["session"]
        assert rows and all(r["ok"] for r in rows)

    def test_server_phase(self, payload):
        rows = payload["phases"]["server"]
        assert rows and all(r["cache_hit"] for r in rows)
        # The warm answer is the cold artifact, byte for byte, and the
        # cache path must already win clearly at the quick scale.
        assert all(r["identical"] for r in rows)
        assert all(r["cold_status"] == "ok" for r in rows)
        assert all(r["speedup"] > 3.0 for r in rows)

    def test_extension_phase(self, payload):
        rows = payload["phases"]["extension"]
        assert rows
        # The engine-equivalence gate: both engines routed the same bits.
        assert all(r["identical"] for r in rows)
        assert all(r["stale_drops"] == 0 for r in rows)
        assert all(r["reference_s"] > 0 and r["extend_s"] > 0 for r in rows)
        from repro.core import vector_kernels_available

        if vector_kernels_available():
            assert all(r["engine"] == "incremental" for r in rows)
            # The incremental engine must already win clearly at the
            # quick scale (the committed full-mode baseline shows >5x).
            assert all(r["speedup"] > 3.0 for r in rows)

    def test_extension_breakdown_phase(self, payload):
        rows = payload["phases"]["extension_breakdown"]
        assert len(rows) == 1
        row = rows[0]
        assert row["iterations"] > 0
        assert row["per_iteration"]
        assert row["per_iteration"][0]["duration_ms"] > 0
        assert row["iteration_ms"]["p99"] >= row["iteration_ms"]["p50"] > 0
        # The env-vs-DP-vs-trim/verify split: every stage column is
        # present, non-negative, and the annotated stages fit inside the
        # total iteration time.
        stages = row["stages"]
        assert set(stages) == {
            "env_query_s",
            "dp_s",
            "trim_s",
            "verify_s",
            "other_s",
            "pruned_iterations",
        }
        assert all(v >= 0 for v in stages.values())
        assert stages["env_query_s"] > 0 and stages["dp_s"] > 0
        assert 0 <= stages["pruned_iterations"] <= row["iterations"]
        first = row["per_iteration"][0]
        assert first["env_query_ms"] is not None
        assert first["pruned"] in (True, False)
        over = row["overhead"]
        assert over["disabled_s"] > 0 and over["traced_s"] > 0
        # The instrumented-but-disabled path must sit within noise of
        # the uninstrumented baseline (acceptance: < 2% in the committed
        # full-mode baseline; the quick CI bound is looser because a
        # single repeat is noisy).
        assert over["baseline_s"] is not None
        assert over["disabled_overhead"] < 1.25
        # One no-op span must stay far under the 5 us budget.
        assert over["noop_span_us"] < 5.0

    def test_server_faults_phase(self, payload):
        rows = payload["phases"]["server_faults"]
        assert rows and all(r["all_ok"] for r in rows)
        # Every injected 503 was absorbed by a retry (the row would
        # have failed its assert otherwise), and the retry count covers
        # the fired faults.
        assert all(r["retries"] >= r["faults_fired"] for r in rows)
        assert all(r["p50_ms"] > 0 and r["p99_ms"] >= r["p50_ms"] for r in rows)

    def test_no_write_when_out_is_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_perf(quick=True, out=None, verbose=False)
        assert list(tmp_path.iterdir()) == []


class TestMakeDrcBoard:
    def test_replication_scales_and_stays_clean(self):
        b1 = make_drc_board(1)
        b2 = make_drc_board(2)
        assert len(b2.traces) == 2 * len(b1.traces)
        assert len(b2.obstacles) == 2 * len(b1.obstacles)
        fast = check_board(b2, check_areas=False)
        assert fast.is_clean()
        assert drc_report_to_dict(fast) == drc_report_to_dict(
            check_board(b2, check_areas=False, exhaustive=True)
        )


def _guard_payload(extend_s=0.1, dtw_ref=0.01, identical=True):
    return {
        "phases": {
            "dtw": [{"nodes": 64, "reference_s": dtw_ref}],
            "extension": [
                {
                    "dgap": 4.0,
                    "extend_s": extend_s,
                    "identical": identical,
                }
            ],
        }
    }


class TestPerfGuard:
    def test_passes_when_not_regressed(self):
        assert check_perf_guard(_guard_payload(0.1), _guard_payload(0.1)) == []
        # Under 2x is still fine.
        assert check_perf_guard(_guard_payload(0.19), _guard_payload(0.1)) == []

    def test_fails_on_regression(self):
        problems = check_perf_guard(_guard_payload(0.25), _guard_payload(0.1))
        assert problems and "dgap=4.0" in problems[0]

    def test_machine_speed_normalization(self):
        # A machine 3x slower on the DTW reference proxy gets a 3x wider
        # allowance — the same workload ratio passes...
        slow = _guard_payload(extend_s=0.3, dtw_ref=0.03)
        assert check_perf_guard(slow, _guard_payload(0.1, dtw_ref=0.01)) == []
        # ...while a genuine engine regression still fails on it.
        regressed = _guard_payload(extend_s=0.9, dtw_ref=0.03)
        assert check_perf_guard(regressed, _guard_payload(0.1, dtw_ref=0.01))

    def test_fails_when_engines_disagree(self):
        problems = check_perf_guard(
            _guard_payload(identical=False), _guard_payload()
        )
        assert any("identical" in p for p in problems)

    def test_unknown_dgaps_are_skipped(self):
        current = _guard_payload()
        current["phases"]["extension"][0]["dgap"] = 9.9
        assert check_perf_guard(current, _guard_payload()) == []

    def test_missing_phases_reported(self):
        problems = check_perf_guard({"phases": {}}, _guard_payload())
        assert len(problems) == 2  # no dtw proxy, no extension phase

    def test_run_perf_guard_reads_baseline_file(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_perf.json"
        baseline.write_text(json.dumps(_guard_payload(0.1)))
        assert run_perf_guard(str(baseline), _guard_payload(0.1)) is True
        assert "perf-guard OK" in capsys.readouterr().out
        assert run_perf_guard(str(baseline), _guard_payload(0.9)) is False
        assert "perf-guard FAIL" in capsys.readouterr().out

    def test_guard_against_committed_baseline_shape(self):
        # The committed BENCH_perf.json must keep the fields the guard
        # reads — this is the schema contract the CI step depends on.
        with open("BENCH_perf.json", "r", encoding="utf-8") as fh:
            committed = json.load(fh)
        assert _dtw_nodes(committed), "baseline lost its dtw proxy rows"
        for row in committed["phases"]["extension"]:
            assert "extend_s" in row and "dgap" in row


def _dtw_nodes(payload):
    return [r["nodes"] for r in payload["phases"]["dtw"] if r.get("reference_s")]


class TestRunProfile:
    def test_writes_top25_cumulative_table(self, tmp_path):
        out = tmp_path / "BENCH_profile.txt"
        assert run_profile(str(out), quick=True, verbose=False) == str(out)
        text = out.read_text()
        assert "cumulative" in text
        assert "extension" in text  # the hot path shows up by file name
        assert "top 25" in text


class TestCliPerf:
    def test_bench_perf_quick_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "perf.json"
        assert main(["bench", "--perf", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "drc" in captured and str(out) in captured
        data = json.loads(out.read_text())
        assert data["kind"] == "BENCH_perf"

    def test_bench_without_what_or_perf_errors(self, capsys):
        from repro.cli import main

        assert main(["bench"]) == 2
        assert "unless --perf" in capsys.readouterr().err

    def test_bench_artefact_plus_perf_conflict_errors(self, capsys):
        from repro.cli import main

        assert main(["bench", "table1", "--perf"]) == 2
        assert "separate" in capsys.readouterr().err

    def test_perf_only_flags_without_perf_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "table1", "--quick"]) == 2
        assert "--quick" in capsys.readouterr().err
        assert main(["bench", "table1", "--out", "x.json"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_table_flags_with_perf_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "--perf", "--cases", "1"]) == 2
        assert "--cases" in capsys.readouterr().err
        assert main(["bench", "--perf", "--json"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_profile_and_guard_without_perf_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "table1", "--profile"]) == 2
        assert "--profile" in capsys.readouterr().err
        assert main(["bench", "table1", "--guard", "BENCH_perf.json"]) == 2
        assert "--guard" in capsys.readouterr().err
