"""Smoke tests for the perf-regression bench (``repro bench --perf``)."""

import json

import pytest

from repro.bench.perf import make_drc_board, run_perf
from repro.drc import check_board
from repro.io import drc_report_to_dict


@pytest.mark.smoke
class TestRunPerfQuick:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("perf") / "BENCH_perf.json"
        payload = run_perf(quick=True, out=str(out), verbose=False)
        with open(out, "r", encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == payload
        return payload

    def test_structure(self, payload):
        assert payload["kind"] == "BENCH_perf"
        assert payload["quick"] is True
        assert set(payload["phases"]) == {
            "dtw",
            "drc",
            "extension",
            "extension_breakdown",
            "session",
            "server",
            "server_faults",
        }
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["total_s"] > 0

    def test_dtw_phase(self, payload):
        rows = payload["phases"]["dtw"]
        assert rows and all(r["identical"] for r in rows)
        assert all(r["reference_s"] > 0 for r in rows)

    def test_drc_phase(self, payload):
        rows = payload["phases"]["drc"]
        assert rows and all(r["identical"] for r in rows)
        assert all(r["violations"] == 0 for r in rows)
        # The grid path must already win clearly at the smallest scale.
        assert rows[0]["speedup"] > 5.0

    def test_session_phase(self, payload):
        rows = payload["phases"]["session"]
        assert rows and all(r["ok"] for r in rows)

    def test_server_phase(self, payload):
        rows = payload["phases"]["server"]
        assert rows and all(r["cache_hit"] for r in rows)
        # The warm answer is the cold artifact, byte for byte, and the
        # cache path must already win clearly at the quick scale.
        assert all(r["identical"] for r in rows)
        assert all(r["cold_status"] == "ok" for r in rows)
        assert all(r["speedup"] > 3.0 for r in rows)

    def test_extension_breakdown_phase(self, payload):
        rows = payload["phases"]["extension_breakdown"]
        assert len(rows) == 1
        row = rows[0]
        assert row["iterations"] > 0
        assert row["per_iteration"]
        assert row["per_iteration"][0]["duration_ms"] > 0
        assert row["iteration_ms"]["p99"] >= row["iteration_ms"]["p50"] > 0
        over = row["overhead"]
        assert over["disabled_s"] > 0 and over["traced_s"] > 0
        # The instrumented-but-disabled path must sit within noise of
        # the uninstrumented baseline (acceptance: < 2% in the committed
        # full-mode baseline; the quick CI bound is looser because a
        # single repeat is noisy).
        assert over["baseline_s"] is not None
        assert over["disabled_overhead"] < 1.25
        # One no-op span must stay far under the 5 us budget.
        assert over["noop_span_us"] < 5.0

    def test_server_faults_phase(self, payload):
        rows = payload["phases"]["server_faults"]
        assert rows and all(r["all_ok"] for r in rows)
        # Every injected 503 was absorbed by a retry (the row would
        # have failed its assert otherwise), and the retry count covers
        # the fired faults.
        assert all(r["retries"] >= r["faults_fired"] for r in rows)
        assert all(r["p50_ms"] > 0 and r["p99_ms"] >= r["p50_ms"] for r in rows)

    def test_no_write_when_out_is_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_perf(quick=True, out=None, verbose=False)
        assert list(tmp_path.iterdir()) == []


class TestMakeDrcBoard:
    def test_replication_scales_and_stays_clean(self):
        b1 = make_drc_board(1)
        b2 = make_drc_board(2)
        assert len(b2.traces) == 2 * len(b1.traces)
        assert len(b2.obstacles) == 2 * len(b1.obstacles)
        fast = check_board(b2, check_areas=False)
        assert fast.is_clean()
        assert drc_report_to_dict(fast) == drc_report_to_dict(
            check_board(b2, check_areas=False, exhaustive=True)
        )


class TestCliPerf:
    def test_bench_perf_quick_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "perf.json"
        assert main(["bench", "--perf", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "drc" in captured and str(out) in captured
        data = json.loads(out.read_text())
        assert data["kind"] == "BENCH_perf"

    def test_bench_without_what_or_perf_errors(self, capsys):
        from repro.cli import main

        assert main(["bench"]) == 2
        assert "unless --perf" in capsys.readouterr().err

    def test_bench_artefact_plus_perf_conflict_errors(self, capsys):
        from repro.cli import main

        assert main(["bench", "table1", "--perf"]) == 2
        assert "separate" in capsys.readouterr().err

    def test_perf_only_flags_without_perf_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "table1", "--quick"]) == 2
        assert "--quick" in capsys.readouterr().err
        assert main(["bench", "table1", "--out", "x.json"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_table_flags_with_perf_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "--perf", "--cases", "1"]) == 2
        assert "--cases" in capsys.readouterr().err
        assert main(["bench", "--perf", "--json"]) == 2
        assert "--json" in capsys.readouterr().err
