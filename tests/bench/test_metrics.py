"""Unit tests for the evaluation metrics (Eqs. 19-20) and table rows."""

import math

import pytest

from repro.bench import (
    Table1Row,
    Table2Row,
    avg_error_pct,
    extension_upper_bound_pct,
    format_table,
    max_error_pct,
)


class TestErrorMetrics:
    def test_max_error(self):
        assert math.isclose(max_error_pct(100.0, [80.0, 95.0]), 20.0)

    def test_avg_error(self):
        assert math.isclose(avg_error_pct(100.0, [80.0, 100.0]), 10.0)

    def test_zero_error_when_matched(self):
        assert max_error_pct(100.0, [100.0, 100.0]) == 0.0

    def test_negative_on_overshoot(self):
        assert max_error_pct(100.0, [101.0]) < 0.0

    def test_extension_upper_bound(self):
        assert math.isclose(extension_upper_bound_pct(62.2, 124.4), 100.0)

    def test_extension_upper_bound_zero(self):
        assert extension_upper_bound_pct(50.0, 50.0) == 0.0


class TestRows:
    def make_row1(self) -> Table1Row:
        return Table1Row(
            case=1,
            l_target=205.88,
            dgap=8.0,
            group_size=8,
            trace_type="single-ended",
            spacing="dense",
            initial_max=37.38,
            aidt_max=33.52,
            ours_max=3.02,
            initial_avg=19.02,
            aidt_avg=14.23,
            ours_avg=1.30,
            aidt_runtime=0.92,
            ours_runtime=6.87,
        )

    def test_table1_format_contains_values(self):
        text = self.make_row1().format()
        assert "205.88" in text and "3.02" in text

    def test_table2_format(self):
        row = Table2Row(
            case=1, dgap=2.5, w_trace=0.5, ideal_patterns=24.88,
            with_dp=879.30, without_dp=845.80,
        )
        text = row.format()
        assert "879.30" in text and "845.80" in text

    def test_format_table_aligns(self):
        rows = [self.make_row1()]
        table = format_table(Table1Row.HEADER, rows)
        lines = table.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("---")
