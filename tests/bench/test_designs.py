"""Unit tests for the synthetic benchmark designs."""

import math

import pytest

from repro.bench import (
    TABLE1_SPECS,
    TABLE2_DGAPS,
    TABLE2_LENGTH,
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from repro.bench.metrics import avg_error_pct, max_error_pct
from repro.drc import check_board


class TestTable1Designs:
    @pytest.mark.parametrize("case", [s.case for s in TABLE1_SPECS])
    def test_initial_errors_match_published(self, case):
        board, spec = make_table1_case(case)
        group = board.groups[0]
        lengths = [m.length() for m in group.members]
        assert math.isclose(
            max_error_pct(spec.l_target, lengths), spec.initial_max, abs_tol=0.05
        )
        assert math.isclose(
            avg_error_pct(spec.l_target, lengths), spec.initial_avg, abs_tol=0.05
        )

    @pytest.mark.parametrize("case", [1, 5])
    def test_original_layout_is_drc_clean(self, case):
        board, _ = make_table1_case(case)
        assert check_board(board).is_clean()

    def test_group_sizes_match_spec(self):
        for spec in TABLE1_SPECS:
            board, _ = make_table1_case(spec.case)
            assert len(board.groups[0]) == spec.group_size

    def test_differential_case_has_pairs(self):
        board, spec = make_table1_case(5)
        assert spec.trace_type == "differential"
        assert len(board.pairs) == spec.group_size
        assert not board.traces

    def test_dense_cases_have_obstacles(self):
        board, _ = make_table1_case(1)
        assert len(board.obstacles) == 2 * 8

    def test_routable_areas_contain_traces(self):
        board, _ = make_table1_case(1)
        for t in board.traces:
            area = board.routable_areas[t.name]
            for p in t.path.points:
                assert area.contains_point(p)

    def test_deterministic(self):
        b1, _ = make_table1_case(2)
        b2, _ = make_table1_case(2)
        for t1, t2 in zip(b1.traces, b2.traces):
            assert t1.path.points == t2.path.points

    def test_traces_are_tilted(self):
        board, _ = make_table1_case(1)
        t = board.traces[0]
        d = t.segments()[0].direction()
        assert abs(d.y) > 1e-3  # genuinely any-direction


class TestTable2Design:
    @pytest.mark.parametrize("dgap", TABLE2_DGAPS)
    def test_original_length(self, dgap):
        _, trace = make_table2_design(dgap)
        assert math.isclose(trace.length(), TABLE2_LENGTH, rel_tol=1e-9)

    def test_ideal_ratio_matches_paper_case1(self):
        assert math.isclose(TABLE2_LENGTH / 2.5, 24.88, abs_tol=0.01)

    def test_has_diagonal_segment(self):
        _, trace = make_table2_design(3.0)
        dirs = [s.direction() for s in trace.segments()]
        assert any(abs(d.x) > 0.1 and abs(d.y) > 0.1 for d in dirs)

    def test_via_field_nonempty_and_clean(self):
        board, _ = make_table2_design(2.5)
        assert len(board.obstacles) > 10
        assert check_board(board).is_clean()

    def test_tighter_rules_fewer_vias_never(self):
        # The via field is identical across d_gap values; only rules change.
        b1, _ = make_table2_design(2.5)
        b2, _ = make_table2_design(5.0)
        assert len(b1.obstacles) == len(b2.obstacles)


class TestShowcaseDesigns:
    def test_any_direction_angles(self):
        board = make_any_direction_design()
        angles = set()
        for t in board.traces:
            d = t.segments()[0].direction()
            angles.add(round(math.degrees(math.atan2(d.y, d.x))))
        assert angles == {17, 33, 56}

    def test_any_direction_is_clean(self):
        board = make_any_direction_design()
        assert check_board(board).is_clean()

    def test_msdtw_case_is_decoupled(self):
        board, pair = make_msdtw_case()
        # The tiny pattern decouples the pair beyond float noise (finely
        # sampled — the pattern is only ~1 unit wide).
        assert pair.max_decoupling(samples=512) > 0.3

    def test_msdtw_case_multiple_rules(self):
        _, pair = make_msdtw_case()
        assert len(pair.distance_rules()) == 2

    def test_msdtw_case_target_reachable(self):
        board, pair = make_msdtw_case()
        assert board.groups[0].resolved_target() > pair.length()
