"""Tests for the table/figure harness and the CLI entry point."""

import os

import pytest

from repro.bench.harness import main, run_table1, run_table2


class TestRunners:
    def test_run_table1_single_case(self):
        rows = run_table1(cases=[4], verbose=False)
        assert len(rows) == 1
        row = rows[0]
        assert row.case == 4
        assert row.ours_max <= row.aidt_max
        assert row.initial_max == pytest.approx(30.99, abs=0.05)

    def test_run_table2_single_dgap(self):
        rows = run_table2(dgaps=[3.5], verbose=False)
        assert len(rows) == 1
        assert rows[0].with_dp > rows[0].without_dp

    def test_table1_row_formatting(self, capsys):
        run_table1(cases=[4], verbose=True)
        out = capsys.readouterr().out
        assert "Table I" in out and "186.27" in out


class TestCli:
    def test_cli_table2(self, capsys, tmp_path):
        code = main(["table2"])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_cli_figures(self, tmp_path, capsys):
        outdir = str(tmp_path / "figs")
        code = main(["figures", "--outdir", outdir])
        assert code == 0
        produced = os.listdir(outdir)
        assert "fig14a.svg" in produced and "fig16b.svg" in produced
        assert len(produced) == 10

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_cli_figures_json_payload_is_paths(self, tmp_path, capsys):
        # Regression: --json must emit the written file paths, not the
        # SVG markup itself.
        import json

        outdir = str(tmp_path / "figs")
        code = main(["figures", "--outdir", outdir, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"figures"}
        assert len(payload["figures"]) == 10
        for name, path in payload["figures"].items():
            assert path.endswith(f"{name}.svg")
            assert os.path.exists(path)
