"""Validator behaviour: structured findings, never exceptions.

The per-fixture golden summaries under ``golden/`` pin the exact finding
counts (and the fixture's content hash, so a fixture edit that changes
the report also fails loudly here, pointing at the goldens to
regenerate).
"""

import json
import os

import pytest

from repro.model.kicad import (
    FATAL,
    INFO,
    ValidationReport,
    WARNING,
    import_board_file,
    parse_sexpr,
    validate_tree,
)

from conftest import ALL_FIXTURES, GOLDEN, fixture_path


def validate(text):
    return validate_tree(parse_sexpr(text))


class TestSeverities:
    def test_wrong_root_is_fatal(self):
        report = validate("(not_a_board (net 1 a))")
        assert [f.code for f in report.fatal] == ["not-kicad-pcb"]
        assert not report.ok()

    def test_empty_board_is_fatal(self):
        report = validate("(kicad_pcb (version 4))")
        assert "no-content" in [f.code for f in report.fatal]

    def test_net_table_alone_is_importable(self):
        report = validate('(kicad_pcb (net 0 "") (net 1 "CLK"))')
        assert report.ok()
        # ... though the missing outline is called out.
        assert "no-outline" in [f.code for f in report.warnings]

    def test_off_layer_segment_warns_with_net_subject(self):
        report = validate(
            '(kicad_pcb (net 1 "CLK") (segment (start 0 0) (end 1 0)'
            " (width 0.2) (layer B.Cu) (net 1)))"
        )
        finding = next(f for f in report.warnings if f.code == "off-layer-segment")
        assert finding.subject == "CLK"
        assert finding.line == 1

    def test_strict_mode_rejects_warnings(self):
        report = validate(
            '(kicad_pcb (net 1 "a") (via (at 1 1) (size 0.6) (net 1)))'
        )
        assert report.ok()
        assert not report.ok(strict=True)

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            ValidationReport().add("oops", "code", "msg")


class TestBranchedNets:
    T_NET = (
        '(kicad_pcb (net 1 "T") (gr_rect (start 0 0) (end 10 10) (layer Edge.Cuts))'
        " (segment (start 0 5) (end 5 5) (width 0.2) (layer F.Cu) (net 1))"
        " (segment (start 5 5) (end 10 5) (width 0.2) (layer F.Cu) (net 1))"
        " (segment (start 5 5) (end 5 0) (width 0.2) (layer F.Cu) (net 1)))"
    )

    def test_three_way_junction_reported(self):
        report = validate(self.T_NET)
        finding = next(f for f in report.warnings if f.code == "branched-net")
        assert "'T'" in finding.message and "1 junction" in finding.message

    def test_chain_is_not_a_branch(self):
        report = validate(self.T_NET.replace("(end 5 0)", "(end 10 5)", 1))
        # Third segment now continues the line: degree 2 everywhere...
        # except the overlapping endpoint makes degree 3 at (10,5)? No:
        # (5,5) holds three endpoints. Rebuild a genuine 3-chain instead.
        report = validate(
            '(kicad_pcb (net 1 "L") (gr_rect (start 0 0) (end 20 10) (layer Edge.Cuts))'
            " (segment (start 0 5) (end 5 5) (width 0.2) (layer F.Cu) (net 1))"
            " (segment (start 5 5) (end 10 5) (width 0.2) (layer F.Cu) (net 1))"
            " (segment (start 10 5) (end 15 5) (width 0.2) (layer F.Cu) (net 1)))"
        )
        assert "branched-net" not in [f.code for f in report.findings]


class TestToDictShape:
    def test_finding_dict_drops_empty_position(self):
        report = ValidationReport()
        report.add(INFO, "x", "no position")
        assert "line" not in report.findings[0].to_dict()

    def test_report_dict_has_summary_and_findings(self):
        report = ValidationReport()
        report.add(WARNING, "a", "m1")
        report.add(FATAL, "b", "m2")
        doc = report.to_dict()
        assert doc["summary"] == {
            "fatal": 1,
            "warnings": 1,
            "infos": 0,
            "by_code": {"a": 1, "b": 1},
        }
        assert len(doc["findings"]) == 2


@pytest.mark.parametrize("name", ALL_FIXTURES)
def test_fixture_summary_matches_golden(name):
    stem = os.path.splitext(name)[0]
    with open(os.path.join(GOLDEN, f"{stem}.summary.json")) as fh:
        golden = json.load(fh)
    board, report, digest = import_board_file(fixture_path(name))
    assert digest == golden["sha256"], (
        f"{name} changed on disk — regenerate tests/kicad/golden/"
    )
    assert report.summary() == golden["summary"]


def test_clean_fixture_count():
    """At least two committed fixtures import with zero fatal findings
    (the ISSUE's acceptance bar); nasty stays warning-rich but non-fatal."""
    reports = {
        name: import_board_file(fixture_path(name))[1] for name in ALL_FIXTURES
    }
    assert sum(1 for r in reports.values() if not r.findings) >= 2
    nasty = reports["nasty.kicad_pcb"]
    assert not nasty.fatal and nasty.warnings
