"""Net-class rule binding (repro.drc.netclass) and the same-net
clearance refinement in the board checker."""

from repro.drc import (
    ViolationKind,
    check_board,
    check_net_classes,
    net_class_rules,
    rules_for_net,
    trace_rules,
)
from repro.geometry import Point, Polyline
from repro.model import Board, DesignRules, RuleSet, Trace
from repro.model.kicad import import_board_file, parse_board

from conftest import fixture_path

WIDE_GAP_BOARD = (
    '(kicad_pcb (version 4) (net 0 "") (net 1 "A") (net 2 "B") '
    '(net_class Default "d" (clearance 0.2)) '
    '(net_class WIDE "w" (clearance 5.0) (add_net "A") (add_net "B")) '
    "(gr_rect (start 0 0) (end 50 30) (layer Edge.Cuts)) "
    "(segment (start 5 14) (end 45 14) (width 0.25) (layer F.Cu) (net 1)) "
    "(segment (start 5 16) (end 45 16) (width 0.25) (layer F.Cu) (net 2)))"
)


class TestRuleResolution:
    def test_tables_resolve_to_design_rules(self):
        board, _ = parse_board(WIDE_GAP_BOARD)
        table = net_class_rules(board)
        assert table["WIDE"].dgap == 5.0
        assert table["Default"].dgap == 0.2

    def test_net_binding_and_default_fallback(self):
        board, _ = parse_board(WIDE_GAP_BOARD)
        assert rules_for_net(board, "A").dgap == 5.0
        assert rules_for_net(board, "UNKNOWN").dgap == 0.2  # Default class
        assert rules_for_net(board, "").dgap == 0.2

    def test_trace_rules_uses_the_trace_net(self):
        board, _ = parse_board(WIDE_GAP_BOARD)
        for trace in board.traces:
            assert trace_rules(board, trace).dgap == 5.0

    def test_synthetic_board_has_no_class_table(self):
        board = Board.with_rect_outline(
            0, 0, 50, 30, DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        )
        assert net_class_rules(board) == {}
        assert rules_for_net(board, "A") is None
        trace = Trace("t", Polyline([Point(5, 15), Point(45, 15)]))
        assert trace_rules(board, trace) == board.rules.default


class TestNetClassPass:
    def test_flags_pairs_too_close_for_their_class(self):
        # 2 mm apart: fine for the 0.2 default, far too close for the
        # 5 mm WIDE class — only the class pass sees it.
        board, _ = parse_board(WIDE_GAP_BOARD)
        assert not [
            v
            for v in check_board(board).violations
            if v.kind == ViolationKind.TRACE_CLEARANCE
        ]
        report = check_net_classes(board)
        assert not report.is_clean()
        assert all(
            v.kind == ViolationKind.TRACE_CLEARANCE for v in report.violations
        )
        assert report.violations[0].required == 5.0 + 0.25

    def test_clean_when_classes_satisfied(self):
        board, _, _ = import_board_file(
            fixture_path("demo_bus.kicad_pcb"), match="BUS"
        )
        assert check_net_classes(board).is_clean()

    def test_noop_without_class_table(self, open_board):
        assert check_net_classes(open_board).is_clean()

    def test_same_net_pairs_exempt(self):
        text = WIDE_GAP_BOARD.replace("(net 2)", "(net 1)").replace(
            '(net 2 "B") ', ""
        )
        board, _ = parse_board(text)
        # Both chains carry net A; the class pass must not flag them
        # against each other.
        assert len(board.traces) == 2
        assert {t.net for t in board.traces} == {"A"}
        assert check_net_classes(board).is_clean()


class TestSameNetSkipInCheckBoard:
    def test_touching_same_net_chains_are_legal(self):
        # Two chains of one net sharing an endpoint (a branched imported
        # net): contact would violate d_gap between *different* signals,
        # but one electrical net touching itself is not a violation.
        rules = DesignRules(dgap=0.4, dobs=0.2, dprotect=0.0)
        board = Board(
            outline=Board.with_rect_outline(0, 0, 50, 30, rules).outline,
            rules=RuleSet(default=rules),
        )
        board.add_trace(
            Trace(
                "BR.1",
                Polyline([Point(5, 15), Point(25, 15)]),
                width=0.25,
                net="BR",
            )
        )
        board.add_trace(
            Trace(
                "BR.2",
                Polyline([Point(25, 15), Point(45, 15)]),
                width=0.25,
                net="BR",
            )
        )
        assert check_board(board).is_clean()

    def test_empty_nets_still_checked(self):
        # Synthetic boards leave Trace.net = "" — the skip must not
        # apply, or every synthetic clearance check dies.
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=0.0)
        board = Board.with_rect_outline(0, 0, 50, 30, rules)
        board.add_trace(Trace("a", Polyline([Point(5, 14), Point(45, 14)])))
        board.add_trace(Trace("b", Polyline([Point(5, 16), Point(45, 16)])))
        report = check_board(board)
        assert any(
            v.kind == ViolationKind.TRACE_CLEARANCE for v in report.violations
        )

    def test_nasty_fixture_routes_despite_branches(self):
        from repro.api import RoutingSession

        board, report, _ = import_board_file(fixture_path("nasty.kicad_pcb"))
        assert any(f.code == "branched-net" for f in report.warnings)
        result = RoutingSession(board, config="fast").run()
        assert result.ok(), result.summary()
