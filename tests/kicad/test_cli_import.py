"""The ``repro import`` surface and the graceful-degradation paths of
``gen``/``corpus`` around the ``imported`` family.

Exit-code contract under test (mirrors the module docstring and README):
2 = unreadable/unparseable file or unusable invocation, 1 = fatal
findings or ``--strict`` with warnings, 0 = ok (warnings allowed).
"""

import json
import os

import pytest

from repro.cli import main
from repro.io import load_board

from conftest import fixture_path

DEMO = fixture_path("demo_bus.kicad_pcb")
NASTY = fixture_path("nasty.kicad_pcb")


@pytest.mark.smoke
class TestImportCommand:
    def test_clean_import_exits_zero(self, capsys):
        assert main(["import", DEMO]) == 0
        out = capsys.readouterr().out
        assert "imported demo_bus" in out
        assert "0 fatal" in out

    def test_json_envelope(self, capsys):
        assert main(["import", DEMO, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "import_response"
        assert payload["source"] == DEMO
        assert len(payload["sha256"]) == 64
        assert payload["ok"] is True
        assert payload["counts"]["traces"] == 3
        assert payload["validation"]["summary"]["fatal"] == 0

    def test_nasty_warnings_are_not_fatal(self, capsys):
        assert main(["import", NASTY, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["validation"]["summary"]["warnings"] > 0

    def test_strict_promotes_warnings_to_failure(self, capsys):
        assert main(["import", NASTY, "--strict"]) == 1

    def test_strict_on_clean_board_still_ok(self, capsys):
        assert main(["import", DEMO, "--strict"]) == 0

    def test_missing_file_is_exit_2(self, capsys):
        assert main(["import", "no/such.kicad_pcb"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parse_error_is_exit_2_with_position(self, tmp_path, capsys):
        bad = tmp_path / "truncated.kicad_pcb"
        bad.write_text("(kicad_pcb (segment (start 1 2)")
        assert main(["import", str(bad), "--json"]) == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["kind"] == "error_response"
        assert payload["error"]["type"] == "KicadParseError"
        assert payload["error"]["line"] == 1
        assert payload["error"]["column"] >= 1
        assert "error:" in captured.err

    def test_out_writes_routable_board_json(self, tmp_path, capsys):
        out = str(tmp_path / "board.json")
        assert main(["import", DEMO, "--match", "BUS", "--out", out]) == 0
        board = load_board(out)
        assert board.meta["kicad"]["match"] == "BUS"
        assert [g.name for g in board.groups] == ["BUS"]
        # ... and the exported board routes through the normal pipeline.
        assert main(["route", out, "--preset", "fast", "--quiet"]) == 0

    def test_svg_artifact(self, tmp_path, capsys):
        svg = str(tmp_path / "board.svg")
        assert main(["import", DEMO, "--svg", svg]) == 0
        assert os.path.getsize(svg) > 0

    def test_name_override(self, tmp_path, capsys):
        out = str(tmp_path / "board.json")
        assert main(["import", DEMO, "--name", "my-board", "--out", out]) == 0
        assert load_board(out).name == "my-board"

    def test_unknown_match_class_is_exit_2(self, capsys):
        assert main(["import", DEMO, "--match", "NOPE"]) == 2
        assert "net class" in capsys.readouterr().err


@pytest.mark.smoke
class TestGracefulDegradation:
    def test_gen_imported_without_path_is_exit_2(self, capsys):
        assert main(["gen", "imported"]) == 2
        err = capsys.readouterr().err
        assert "requires parameter" in err
        assert "Traceback" not in err

    def test_gen_list_describes_requires(self, capsys):
        assert main(["gen", "--list", "imported"]) == 0
        out = capsys.readouterr().out
        assert "requires:" in out and "path" in out

    def test_gen_imported_with_params_works(self, tmp_path, capsys):
        out = str(tmp_path / "b.json")
        code = main(
            ["gen", "imported", "--param", f"path={DEMO}", "--out", out]
        )
        assert code == 0
        assert load_board(out).meta["kicad"]["source"] == DEMO

    def test_corpus_imported_without_fixture_is_exit_2(self, capsys):
        assert main(["corpus", "run", "--scenario", "imported"]) == 2
        assert "--fixture" in capsys.readouterr().err

    def test_corpus_imported_without_fixture_json_envelope(self, capsys):
        code = main(["corpus", "run", "--scenario", "imported", "--json"])
        assert code == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["kind"] == "error_response"
        assert "--fixture" in payload["error"]["message"]

    def test_corpus_with_fixtures_routes_real_boards(self, capsys):
        code = main(
            [
                "corpus", "run", "--scenario", "imported",
                "--fixture", DEMO,
                "--fixture", fixture_path("keepout_escape.kicad_pcb"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (agg,) = payload["scenarios"]
        assert agg["boards"] == 2 and agg["ok"] == 2


@pytest.mark.smoke
class TestTraceHeader:
    def test_summarize_names_imported_board_and_source(self, tmp_path, capsys):
        board_json = str(tmp_path / "board.json")
        trace_json = str(tmp_path / "trace.json")
        assert main(["import", DEMO, "--match", "BUS", "--out", board_json]) == 0
        assert main(
            [
                "route", board_json, "--preset", "fast",
                "--trace", trace_json, "--quiet",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_json]) == 0
        out = capsys.readouterr().out
        assert "board demo_bus" in out
        assert DEMO in out

    def test_synthetic_board_header_has_no_source(self, tmp_path, capsys):
        board_json = str(tmp_path / "board.json")
        trace_json = str(tmp_path / "trace.json")
        assert main(
            ["gen", "serpentine_bus", "--seed", "0", "--out", board_json]
        ) == 0
        assert main(
            [
                "route", board_json, "--preset", "fast",
                "--trace", trace_json, "--quiet",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_json]) == 0
        out = capsys.readouterr().out
        assert "board " in out  # name still surfaces...
        assert ".kicad_pcb" not in out  # ...but no file provenance
