"""The ``imported`` scenario family: real boards in the corpus machinery.

The family's identity contract: a spec pins ``path`` + content hash, the
generated board is a pure function of the file bytes, and therefore the
content-addressed cache key is byte-deterministic across imports.
"""

import pytest

from repro.api import RoutingSession, SessionConfig
from repro.cache import cache_key
from repro.io import board_to_dict, board_to_json
from repro.model.kicad import file_sha256
from repro.scenarios import generate, get, list_scenarios, run_corpus

from conftest import CLEAN_FIXTURES, fixture_path

DEMO = fixture_path("demo_bus.kicad_pcb")


class TestFamilyContract:
    def test_registered_with_requires(self):
        family = get("imported")
        assert family.requires == ("path",)
        assert family.feasible
        assert "kicad" in family.tags

    def test_requires_families_excluded_from_plain_listing_sweeps(self):
        # The corpus default selection and the generator property sweep
        # both filter on .requires — pin that the flag is set.
        assert [f.name for f in list_scenarios() if f.requires] == ["imported"]

    def test_generate_without_path_raises_clear_error(self):
        with pytest.raises(ValueError, match="requires parameter"):
            generate("imported", seed=0)

    def test_generate_builds_the_board(self):
        board = generate("imported", seed=0, params={"path": DEMO, "match": "BUS"})
        assert len(board.traces) == 3
        assert board.groups
        assert board.meta["kicad"]["source"] == DEMO

    def test_board_name_pins_path_stem_and_hash(self):
        digest = file_sha256(DEMO)
        board = generate(
            "imported", seed=0, params={"path": DEMO, "sha256": digest}
        )
        assert board.name == f"imported-demo_bus-{digest[:8]}"

    def test_unpinned_spec_names_by_stem_alone(self):
        board = generate("imported", seed=0, params={"path": DEMO})
        assert board.name == "imported-demo_bus"

    def test_hash_mismatch_refused(self):
        with pytest.raises(ValueError, match="content hash mismatch"):
            generate(
                "imported", seed=0, params={"path": DEMO, "sha256": "0" * 64}
            )

    def test_missing_file_refused(self):
        with pytest.raises(ValueError, match="not found"):
            generate("imported", seed=0, params={"path": "no/such.kicad_pcb"})

    def test_generation_is_byte_deterministic(self):
        params = {"path": DEMO, "sha256": file_sha256(DEMO), "match": "BUS"}
        first = board_to_json(generate("imported", seed=0, params=params))
        second = board_to_json(generate("imported", seed=0, params=params))
        assert first == second

    def test_cache_key_is_byte_deterministic(self):
        fingerprint = SessionConfig.preset("fast").fingerprint()
        keys = {
            cache_key(
                board_to_dict(generate("imported", seed=0, params={"path": DEMO})),
                fingerprint,
            )
            for _ in range(3)
        }
        assert len(keys) == 1


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixtures_route_end_to_end(name):
    board = generate("imported", seed=0, params={"path": fixture_path(name)})
    result = RoutingSession(board, config="fast").run()
    assert result.ok(), result.summary()
    assert result.drc is not None and result.drc.is_clean()
    # Scenario-generated boards carry the scenario spec as provenance.
    assert result.provenance == board.meta["scenario"]
    assert result.provenance["params"]["path"] == fixture_path(name)


def test_directly_imported_board_gets_kicad_provenance():
    # No scenario stamp (import_board_file, not generate): the session
    # falls back to the KiCad provenance so the run artifact still says
    # where the board came from.
    from repro.model.kicad import import_board_file

    board, _report, digest = import_board_file(DEMO, match="BUS")
    result = RoutingSession(board, config="fast").run()
    assert result.ok(), result.summary()
    assert result.provenance["name"] == "imported"
    assert result.provenance["kicad"]["sha256"] == digest


def test_demo_bus_matches_to_target():
    board = generate(
        "imported", seed=0, params={"path": DEMO, "match": "BUS"}
    )
    result = RoutingSession(board, config="fast").run()
    assert result.ok(), result.summary()
    (group,) = board.groups
    assert group.is_matched()


class TestCorpus:
    def test_fixtures_sweep(self, tmp_path):
        paths = [fixture_path(n) for n in CLEAN_FIXTURES]
        report = run_corpus(
            scenarios=["imported"], fixtures=paths, preset="fast"
        )
        (agg,) = report["scenarios"]
        assert agg["scenario"] == "imported"
        assert agg["boards"] == len(paths)
        assert agg["ok"] == len(paths)
        assert report["summary"]["gate_passed"]
        names = [c["board"] for c in agg["cases"]]
        assert len(set(names)) == len(paths), "board names must be unique"

    def test_without_fixtures_raises(self):
        with pytest.raises(ValueError, match="--fixture"):
            run_corpus(scenarios=["imported"])

    def test_fixtures_join_the_default_sweep(self):
        # Fixtures alone (no explicit scenario list) append the imported
        # family to the default selection rather than replacing it.
        report = run_corpus(
            scenarios=None,
            seeds=(0,),
            quick=True,
            preset="fast",
            fixtures=[DEMO],
        )
        names = [a["scenario"] for a in report["scenarios"]]
        assert "imported" in names
        assert len(names) > 1

    def test_duplicate_fixtures_deduped(self):
        report = run_corpus(
            scenarios=["imported"], fixtures=[DEMO, DEMO], preset="fast"
        )
        assert report["scenarios"][0]["boards"] == 1

    def test_cache_hits_across_sweeps(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_corpus(
            scenarios=["imported"],
            fixtures=[DEMO],
            preset="fast",
            cache=cache_dir,
        )
        assert first["summary"]["cached"] == 0
        second = run_corpus(
            scenarios=["imported"],
            fixtures=[DEMO],
            preset="fast",
            cache=cache_dir,
        )
        assert second["summary"]["cached"] == 1
        assert second["summary"]["ok"] == 1
