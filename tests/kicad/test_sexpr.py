"""Tokenizer and reader edge cases for the ``.kicad_pcb`` s-expression
front-end: escapes, unicode, CRLF, truncation, positions."""

import pytest

from repro.model.kicad import KicadParseError, parse_sexpr
from repro.model.kicad.sexpr import tokenize


def parse_one(text):
    return parse_sexpr(text)


class TestQuotedStrings:
    def test_embedded_parens_do_not_open_nodes(self):
        root = parse_one('(kicad_pcb (net 1 "DATA(0)"))')
        net = root.child("net")
        assert net.atoms == [1, "DATA(0)"]

    def test_escaped_quote_and_backslash(self):
        root = parse_one(r'(kicad_pcb (title "a \"quoted\" \\ name"))')
        assert root.value("title") == 'a "quoted" \\ name'

    def test_named_escapes(self):
        root = parse_one(r'(kicad_pcb (title "a\tb\nc\rd"))')
        assert root.value("title") == "a\tb\nc\rd"

    def test_unknown_escape_stands_for_itself(self):
        root = parse_one(r'(kicad_pcb (title "\q"))')
        assert root.value("title") == "q"

    def test_unicode_net_name(self):
        root = parse_one('(kicad_pcb (net 1 "Ω_SENSE/η"))')
        assert root.child("net").atoms[1] == "Ω_SENSE/η"

    def test_unterminated_string_positions(self):
        with pytest.raises(KicadParseError) as exc:
            parse_one('(kicad_pcb\n  (net 1 "oops))')
        assert exc.value.line == 2
        assert exc.value.column == 10  # the opening quote

    def test_unterminated_escape(self):
        with pytest.raises(KicadParseError, match="escape"):
            list(tokenize('(x "a\\'))


class TestLineEndings:
    def test_crlf_counts_as_one_break(self):
        tokens = list(tokenize('(kicad_pcb\r\n(net 1 "a")'))
        net = next(t for t in tokens if t.text == "net")
        assert (net.line, net.column) == (2, 2)

    def test_lone_cr_breaks_too(self):
        tokens = list(tokenize('(kicad_pcb\r(net 1 "a")'))
        net = next(t for t in tokens if t.text == "net")
        assert (net.line, net.column) == (2, 2)

    def test_crlf_document_parses_like_lf(self):
        lf = '(kicad_pcb (version 4) (net 1 "CLK"))'
        crlf = lf.replace(" (", " \r\n(")
        a, b = parse_one(lf), parse_one(crlf)
        assert a.value("version") == b.value("version") == 4
        assert a.child("net").atoms == b.child("net").atoms


class TestTruncationAndGarbage:
    def test_empty_document(self):
        with pytest.raises(KicadParseError, match="empty document"):
            parse_one("   \n  ")

    def test_root_must_be_a_node(self):
        with pytest.raises(KicadParseError, match="expected '\\('"):
            parse_one("kicad_pcb")

    def test_truncated_input_names_the_open_node(self):
        with pytest.raises(KicadParseError, match=r"\(segment \.\.\.\)") as exc:
            parse_one("(kicad_pcb (segment (start 1 2)")
        assert exc.value.line == 1
        assert exc.value.column > 1

    def test_trailing_garbage(self):
        with pytest.raises(KicadParseError, match="trailing data"):
            parse_one("(kicad_pcb) extra")

    def test_extra_close_paren_is_trailing_data(self):
        with pytest.raises(KicadParseError, match="trailing data"):
            parse_one("(kicad_pcb))")


class TestNodeShapes:
    def test_numeric_head_layer_row(self):
        root = parse_one("(kicad_pcb (layers (0 F.Cu signal) (31 B.Cu signal)))")
        rows = root.child("layers").nodes
        assert [r.name for r in rows] == ["0", "31"]
        assert rows[0].atoms == ["F.Cu", "signal"]

    def test_atom_conversion(self):
        root = parse_one("(kicad_pcb (version 20171130) (width -0.25) (layer F.Cu))")
        assert root.value("version") == 20171130
        assert root.value("width") == -0.25
        assert root.value("layer") == "F.Cu"

    def test_accessors(self):
        root = parse_one("(kicad_pcb (net 1 a) (net 2 b) (general (thickness 1.6)))")
        assert [n.atoms[0] for n in root.children("net")] == [1, 2]
        assert root.child("general").value("thickness") == 1.6
        assert root.child("missing") is None
        assert root.value("missing", default="x") == "x"
        assert root.child("net").atom(5, default=None) is None
        assert sum(1 for _ in root.walk()) == 5  # root + 2 nets + general + thickness

    def test_empty_node_tolerated(self):
        root = parse_one("(kicad_pcb ())")
        assert root.nodes[0].name == ""

    def test_positions_are_recorded(self):
        root = parse_one("(kicad_pcb\n  (net 1 a))")
        net = root.child("net")
        assert (net.line, net.column) == (2, 3)
