"""Parser semantics: segments→traces, rules, obstacles, outline, meta."""

import pytest

from repro.geometry import Point
from repro.model.kicad import import_board_file, parse_board
from repro.model.kicad.parser import FALLBACK_CLEARANCE, _chain_segments

from conftest import fixture_path


def board_of(text, **kwargs):
    board, report = parse_board(text, **kwargs)
    return board, report


HEADER = '(kicad_pcb (version 20171130) (generator pcbnew) (net 0 "") (net 1 "CLK") '
OUTLINE = "(gr_rect (start 0 0) (end 50 30) (layer Edge.Cuts)) "


def seg(x0, y0, x1, y1, net=1, width=0.25, layer="F.Cu"):
    return (
        f"(segment (start {x0} {y0}) (end {x1} {y1}) (width {width}) "
        f"(layer {layer}) (net {net})) "
    )


class TestChaining:
    def test_two_segments_chain_into_one_trace(self):
        board, _ = board_of(
            HEADER + OUTLINE + seg(5, 15, 25, 15) + seg(25, 15, 45, 15) + ")"
        )
        assert [t.name for t in board.traces] == ["CLK"]
        assert list(board.traces[0].path.points) == [
            Point(5, 15), Point(25, 15), Point(45, 15),
        ]

    def test_file_order_reversed_still_chains(self):
        board, _ = board_of(
            HEADER + OUTLINE + seg(25, 15, 45, 15) + seg(5, 15, 25, 15) + ")"
        )
        assert len(board.traces) == 1
        assert len(board.traces[0].path.points) == 3

    def test_branched_net_splits_with_suffixes(self):
        board, report = board_of(
            HEADER
            + OUTLINE
            + seg(5, 15, 25, 15)
            + seg(25, 15, 45, 15)
            + seg(25, 15, 25, 28)
            + ")"
        )
        assert sorted(t.name for t in board.traces) == ["CLK.1", "CLK.2", "CLK.3"]
        assert all(t.net == "CLK" for t in board.traces)
        assert "branched-net" in [f.code for f in report.warnings]

    def test_chain_width_is_the_maximum(self):
        board, _ = board_of(
            HEADER
            + OUTLINE
            + seg(5, 15, 25, 15, width=0.2)
            + seg(25, 15, 45, 15, width=0.4)
            + ")"
        )
        assert board.traces[0].width == 0.4

    def test_degenerate_and_off_layer_segments_skipped(self):
        board, _ = board_of(
            HEADER
            + OUTLINE
            + seg(5, 15, 45, 15)
            + seg(10, 20, 10, 20)  # zero length
            + seg(5, 25, 45, 25, layer="B.Cu")
            + ")"
        )
        assert len(board.traces) == 1

    def test_chain_segments_unit(self):
        chains = _chain_segments(
            [((0, 0), (1, 0), 0.2), ((1, 0), (2, 0), 0.3), ((5, 5), (6, 5), 0.2)]
        )
        assert [(len(pts), w) for pts, w in chains] == [(3, 0.3), (2, 0.2)]

    def test_unnamed_net_gets_id_name(self):
        board, _ = board_of(
            '(kicad_pcb (net 0 "") (net 7 "") '
            + OUTLINE
            + seg(5, 15, 45, 15, net=7)
            + ")"
        )
        assert board.traces[0].name == "n7"


class TestNetClasses:
    WITH_CLASSES = (
        HEADER
        + '(net_class Default "d" (clearance 0.2) (trace_width 0.25)) '
        + '(net_class FAST "f" (clearance 0.5) (trace_width 0.3) (add_net "CLK")) '
        + OUTLINE
        + seg(5, 15, 45, 15)
        + ")"
    )

    def test_default_class_sets_board_rules(self):
        board, _ = board_of(self.WITH_CLASSES)
        assert board.rules.default.dgap == 0.2
        assert board.rules.default.dobs == 0.2

    def test_classes_preserved_in_meta(self):
        board, _ = board_of(self.WITH_CLASSES)
        classes = board.meta["kicad"]["net_classes"]
        assert classes["FAST"]["nets"] == ["CLK"]
        assert classes["FAST"]["rules"]["dgap"] == 0.5

    def test_no_default_class_uses_strictest(self):
        text = self.WITH_CLASSES.replace("net_class Default", "net_class Other")
        board, _ = board_of(text)
        assert board.rules.default.dgap == 0.5

    def test_no_classes_fall_back_to_stock_clearance(self):
        board, _ = board_of(HEADER + OUTLINE + seg(5, 15, 45, 15) + ")")
        assert board.rules.default.dgap == FALLBACK_CLEARANCE


class TestObstacles:
    def test_keepout_zone_imported(self):
        board, _ = board_of(
            HEADER
            + OUTLINE
            + "(zone (net 0) (layer F.Cu) (keepout (tracks not_allowed)) "
            "(polygon (pts (xy 10 10) (xy 20 10) (xy 20 20) (xy 10 20)))) "
            + seg(5, 25, 45, 25)
            + ")"
        )
        kinds = [o.kind for o in board.obstacles]
        assert kinds == ["keepout"]

    def test_filled_zone_not_an_obstacle(self):
        board, report = board_of(
            HEADER
            + OUTLINE
            + "(zone (net 1) (layer F.Cu) "
            "(polygon (pts (xy 10 10) (xy 20 10) (xy 20 20)))) "
            + seg(5, 25, 45, 25)
            + ")"
        )
        assert board.obstacles == []
        assert "filled-zone" in [f.code for f in report.warnings]

    def test_via_on_routed_net_skipped_but_orphan_kept(self):
        board, _ = board_of(
            HEADER
            + '(net 2 "GND") '
            + OUTLINE
            + seg(5, 15, 45, 15)
            + "(via (at 25 15) (size 0.6) (net 1)) "
            + "(via (at 40 25) (size 0.6) (net 2)) "
            + ")"
        )
        vias = [o for o in board.obstacles if o.kind == "via"]
        assert len(vias) == 1

    def test_pad_on_routed_net_becomes_info_not_obstacle(self):
        board, report = board_of(
            HEADER
            + OUTLINE
            + seg(5, 15, 45, 15)
            + '(footprint "R1" (at 5 15) '
            '(pad "1" smd rect (at 0 0) (size 1 0.5) (layers F.Cu) (net 1 "CLK"))) '
            + ")"
        )
        assert board.obstacles == []
        assert "connected-pad" in [f.code for f in report.infos]

    def test_rotated_pad_bounding_box(self):
        board, _ = board_of(
            HEADER
            + OUTLINE
            + seg(5, 25, 45, 25)
            + '(footprint "U1" (at 20 10 90) '
            '(pad "1" smd rect (at 0 0) (size 4 2) (layers F.Cu) (net 0 ""))) '
            + ")"
        )
        pad = next(o for o in board.obstacles if o.kind == "pad")
        xmin, ymin, xmax, ymax = pad.bounds()
        # 4x2 rotated 90 degrees -> 2 wide, 4 tall around (20, 10).
        assert (round(xmax - xmin, 6), round(ymax - ymin, 6)) == (2.0, 4.0)
        assert pad.name == "U1:1"

    def test_back_side_pad_ignored(self):
        board, _ = board_of(
            HEADER
            + OUTLINE
            + seg(5, 25, 45, 25)
            + '(footprint "U1" (at 20 10) '
            '(pad "1" smd rect (at 0 0) (size 4 2) (layers B.Cu) (net 0 ""))) '
            + ")"
        )
        assert board.obstacles == []


class TestOutline:
    def test_gr_line_loop_becomes_polygon(self):
        board, report = board_of(
            HEADER
            + "(gr_line (start 0 0) (end 50 0) (layer Edge.Cuts)) "
            "(gr_line (start 50 0) (end 50 30) (layer Edge.Cuts)) "
            "(gr_line (start 50 30) (end 0 30) (layer Edge.Cuts)) "
            "(gr_line (start 0 30) (end 0 0) (layer Edge.Cuts)) "
            + seg(5, 15, 45, 15)
            + ")"
        )
        assert len(board.outline.points) == 4
        assert not report.findings

    def test_open_loop_falls_back_to_padded_bbox(self):
        board, report = board_of(
            HEADER
            + "(gr_line (start 0 0) (end 50 0) (layer Edge.Cuts)) "
            "(gr_line (start 50 0) (end 50 30) (layer Edge.Cuts)) "
            + seg(5, 15, 45, 15)
            + ")"
        )
        assert "open-outline" in [f.code for f in report.warnings]
        xmin, ymin, xmax, ymax = board.outline.bounds()
        assert xmin < 5 and xmax > 45  # padded beyond the copper

    def test_no_outline_at_all(self):
        board, report = board_of(HEADER + seg(5, 15, 45, 15) + ")")
        assert "no-outline" in [f.code for f in report.warnings]
        xmin, ymin, xmax, ymax = board.outline.bounds()
        assert xmin < 5 and xmax > 45 and ymin < 15 < ymax


class TestMatchBinding:
    def test_unknown_class_raises_value_error(self):
        with pytest.raises(ValueError, match="net class 'NOPE'"):
            parse_board(HEADER + OUTLINE + seg(5, 15, 45, 15) + ")", match="NOPE")

    def test_class_without_routed_traces_raises(self):
        text = (
            HEADER
            + '(net_class EMPTY "e" (clearance 0.2) (add_net "CLK")) '
            + OUTLINE
            + ")"
        )
        with pytest.raises(ValueError, match="no routed traces"):
            parse_board(text, match="EMPTY")

    def test_single_member_group_warns(self):
        text = (
            HEADER
            + '(net_class ONE "o" (clearance 0.2) (add_net "CLK")) '
            + OUTLINE
            + seg(5, 15, 45, 15)
            + ")"
        )
        board, report = parse_board(text, match="ONE")
        assert [g.name for g in board.groups] == ["ONE"]
        assert "single-member-group" in [f.code for f in report.warnings]

    def test_demo_bus_group_targets_longest(self):
        board, report, _ = import_board_file(
            fixture_path("demo_bus.kicad_pcb"), match="BUS"
        )
        (group,) = board.groups
        assert group.name == "BUS"
        assert len(group.members) == 3
        # No explicit target: resolves to the longest member (the
        # smallest legal common target).
        assert group.target_length is None
        assert group.resolved_target() == max(
            t.path.length() for t in board.traces
        )


class TestMeta:
    def test_provenance_stamp(self, demo_bus):
        board, report, digest = demo_bus
        kicad = board.meta["kicad"]
        assert kicad["sha256"] == digest
        assert kicad["source"].endswith("demo_bus.kicad_pcb")
        assert kicad["nets"]["1"] == "BUS0"
        assert kicad["match"] == "BUS"
        assert kicad["counts"]["traces"] == len(board.traces)
        assert kicad["validation"] == report.summary()
        assert board.name == "demo_bus"

    def test_unicode_and_escapes_survive(self):
        board, report, _ = import_board_file(fixture_path("nasty.kicad_pcb"))
        nets = board.meta["kicad"]["nets"].values()
        assert any("Ω" in name for name in nets)
