"""Imported boards through the serving stack: POST /route semantics.

The server never learns about KiCad — the imported board travels as
plain board JSON with its ``meta["kicad"]`` stamp, and the
content-addressed cache keys off those bytes, so re-posting the same
fixture import is a cache hit.
"""

import pytest

from repro.io import board_to_dict
from repro.model.kicad import import_board_file
from repro.server import RouterApp

from conftest import fixture_path


@pytest.fixture
def app(tmp_path) -> RouterApp:
    return RouterApp(str(tmp_path / "cache"))


@pytest.fixture
def payload():
    board, _report, _digest = import_board_file(
        fixture_path("demo_bus.kicad_pcb"), match="BUS"
    )
    return {"board": board_to_dict(board), "preset": "fast"}


@pytest.mark.smoke
def test_route_imported_board(app, payload):
    status, envelope = app.route(payload)
    assert status == 200
    assert envelope["status"] == "ok"
    assert envelope["cache"] == "miss"
    result = envelope["result"]
    assert result["board"] == "demo_bus"
    # The run artifact keeps the ingestion provenance end to end.
    assert result["provenance"]["name"] == "imported"
    assert result["provenance"]["kicad"]["match"] == "BUS"


@pytest.mark.smoke
def test_reimported_fixture_is_a_cache_hit(app, payload):
    first_status, first = app.route(payload)
    assert first_status == 200 and first["cache"] == "miss"
    # A fresh import of the same bytes produces the same board JSON,
    # hence the same key: the pipeline never runs again.
    board, _report, _digest = import_board_file(
        fixture_path("demo_bus.kicad_pcb"), match="BUS"
    )
    second_status, second = app.route(
        {"board": board_to_dict(board), "preset": "fast"}
    )
    assert second_status == 200
    assert second["cache"] == "hit"
    assert second["key"] == first["key"]
