"""Shared paths and imports for the KiCad ingestion suite.

Every test here runs against the committed ``.kicad_pcb`` fixtures —
real board files, byte-pinned (``.gitattributes`` keeps git from
normalising the CRLF one), so content hashes in these tests are stable.
"""

from __future__ import annotations

import os

import pytest

from repro.model.kicad import import_board_file

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: Fixtures that must import with *zero* findings and route end-to-end.
CLEAN_FIXTURES = ("demo_bus.kicad_pcb", "keepout_escape.kicad_pcb")

#: Every committed fixture, clean or nasty.
ALL_FIXTURES = CLEAN_FIXTURES + ("nasty.kicad_pcb", "crlf_minimal.kicad_pcb")


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURES, name)


@pytest.fixture
def demo_bus():
    board, report, digest = import_board_file(
        fixture_path("demo_bus.kicad_pcb"), match="BUS"
    )
    return board, report, digest


@pytest.fixture
def nasty():
    board, report, digest = import_board_file(fixture_path("nasty.kicad_pcb"))
    return board, report, digest
