"""Deep-copy discipline for ``Board.meta["kicad"]`` at every boundary.

The provenance stamp is a nested dict (net tables, class tables,
counts).  Aliasing it across the io layer or into run results would let
one consumer's mutation silently corrupt another's view — these are the
regression tests that pin the isolation.
"""

import pytest

from repro.api import RoutingSession
from repro.io import board_from_json, board_to_dict, board_to_json
from repro.model.kicad import import_board_file

from conftest import fixture_path


@pytest.fixture
def board():
    board, _report, _digest = import_board_file(
        fixture_path("demo_bus.kicad_pcb"), match="BUS"
    )
    return board


def test_board_to_dict_snapshot_is_isolated(board):
    snapshot = board_to_dict(board)
    snapshot["meta"]["kicad"]["nets"]["1"] = "CORRUPTED"
    snapshot["meta"]["kicad"]["net_classes"]["BUS"]["nets"].append("X")
    assert board.meta["kicad"]["nets"]["1"] == "BUS0"
    assert "X" not in board.meta["kicad"]["net_classes"]["BUS"]["nets"]


def test_loaded_board_does_not_alias_the_document(board):
    rebuilt = board_from_json(board_to_json(board))
    assert rebuilt.meta == board.meta
    rebuilt.meta["kicad"]["counts"]["traces"] = 999
    rebuilt.meta["kicad"]["layers"].append("Fake.Cu")
    assert board.meta["kicad"]["counts"]["traces"] == 3
    assert "Fake.Cu" not in board.meta["kicad"]["layers"]


def test_roundtrip_preserves_kicad_meta_bytes(board):
    once = board_to_json(board)
    twice = board_to_json(board_from_json(once))
    assert once == twice


def test_run_result_provenance_is_isolated(board):
    result = RoutingSession(board, config="fast").run()
    assert result.ok()
    result.provenance["kicad"]["sha256"] = "tampered"
    result.provenance["kicad"]["nets"]["1"] = "tampered"
    assert board.meta["kicad"]["sha256"] != "tampered"
    assert board.meta["kicad"]["nets"]["1"] == "BUS0"
