"""Unit tests for the SVG renderer."""

import os
import xml.etree.ElementTree as ET

import pytest

from repro.geometry import Point, Polyline, rectangle
from repro.model import Board, DesignRules, DifferentialPair, Trace, via
from repro.viz import SvgCanvas, canvas_for_board, color_for, render_board


def small_board() -> Board:
    board = Board.with_rect_outline(0, 0, 50, 30, DesignRules(dgap=4))
    board.add_trace(Trace("t", Polyline([Point(5, 10), Point(45, 10)]), width=1.0))
    board.add_obstacle(via(Point(25, 20), 2.0))
    p = Trace("d_P", Polyline([Point(5, 24), Point(45, 24)]), width=0.5)
    n = Trace("d_N", Polyline([Point(5, 22), Point(45, 22)]), width=0.5)
    board.add_pair(DifferentialPair("d", p, n, rule=2.0))
    return board


class TestCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(0, 0, 10, 10)
        canvas.polyline(Polyline([Point(0, 0), Point(5, 5)]))
        canvas.polygon(rectangle(1, 1, 3, 3))
        canvas.circle(Point(5, 5), 1.0)
        canvas.text(Point(2, 8), "label <&>")
        ET.fromstring(canvas.to_svg())  # raises on malformed XML

    def test_y_axis_flipped(self):
        canvas = SvgCanvas(0, 0, 10, 10, scale=1.0, margin=0.0)
        low = canvas._map(Point(0, 0))
        high = canvas._map(Point(0, 10))
        assert high[1] < low[1]  # larger board-y maps to smaller svg-y

    def test_save_writes_file(self, tmp_path):
        canvas = SvgCanvas(0, 0, 10, 10)
        path = canvas.save(str(tmp_path / "x.svg"))
        assert os.path.exists(path)

    def test_text_escaped(self):
        canvas = SvgCanvas(0, 0, 10, 10)
        canvas.text(Point(0, 0), "<script>")
        assert "<script>" not in canvas.to_svg()

    def test_color_palette_cycles(self):
        assert color_for(0) != color_for(1)
        assert color_for(0) == color_for(10)


class TestRenderBoard:
    def test_renders_all_elements(self):
        svg = render_board(small_board())
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        polylines = root.findall(f"{ns}polyline")
        polygons = root.findall(f"{ns}polygon")
        assert len(polylines) == 3  # trace + two pair sub-traces
        assert len(polygons) >= 2   # outline + via

    def test_reference_layer_drawn(self):
        board = small_board()
        ref = {"t": board.traces[0].path}
        svg = render_board(board, reference=ref)
        assert "stroke-dasharray" in svg

    def test_show_areas(self):
        board = small_board()
        board.set_routable_area("t", rectangle(0, 0, 50, 15))
        svg = render_board(board, show_areas=True)
        assert "#f2f2d0" in svg

    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "board.svg")
        render_board(small_board(), path=path)
        assert os.path.getsize(path) > 100

    def test_canvas_for_board_bounds(self):
        canvas = canvas_for_board(small_board())
        assert canvas.xmax == 50 and canvas.ymax == 30
