"""End-to-end pipeline tests: design -> (assign) -> match -> verify."""

import math

import pytest

from repro import (
    Board,
    DesignRules,
    DifferentialPair,
    LengthMatchingRouter,
    MatchGroup,
    Trace,
    check_board,
)
from repro.bench import (
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from repro.core import ExtensionConfig, FixedTrackMeander, TraceExtender
from repro.geometry import Point, Polyline
from repro.region import apply_assignment, assign_regions


class TestTable1Pipeline:
    @pytest.mark.parametrize("case", [1, 4])
    def test_dense_single_ended_case(self, case):
        board, spec = make_table1_case(case)
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert report.max_error() < 0.06          # far better than initial
        assert report.max_error() >= -1e-9        # never overshoots
        assert check_board(board).is_clean()

    def test_differential_case(self):
        board, spec = make_table1_case(5)
        original_skew = {p.name: p.skew() for p in board.pairs}
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert report.max_error() < 0.03
        for pair in board.pairs:
            # Routed pairs come back skew-free; members already at target
            # keep their original routing (and its legal tiny-pattern skew).
            assert pair.skew() <= max(1e-6, original_skew[pair.name])

    def test_endpoints_never_move(self):
        board, _ = make_table1_case(2)
        before = {t.name: (t.start, t.end) for t in board.traces}
        LengthMatchingRouter(board).match_group(board.groups[0])
        for t in board.traces:
            s, e = before[t.name]
            assert t.start.almost_equals(s, 1e-6) and t.end.almost_equals(e, 1e-6)

    def test_traces_stay_in_their_corridors(self):
        from repro.geometry import polyline_inside_polygon

        board, _ = make_table1_case(3)
        LengthMatchingRouter(board).match_group(board.groups[0])
        for t in board.traces:
            assert polyline_inside_polygon(t.path, board.routable_areas[t.name])


class TestTable2Pipeline:
    def test_dp_beats_fixed_tracks_when_tight(self):
        results = {}
        for dgap in (2.5, 5.0):
            board, trace = make_table2_design(dgap)
            rules = board.rules.rules_for_points(trace.path.points)
            area = board.member_routable_area(trace)
            dp = TraceExtender(
                rules, area, board.obstacles, [], ExtensionConfig(max_iterations=800)
            ).extension_upper_bound(trace)
            fixed = FixedTrackMeander(
                rules, area, board.obstacles, [], ExtensionConfig()
            ).extension_upper_bound(trace)
            results[dgap] = (dp.achieved, fixed.achieved)
        # DP wins at every d_gap, and its relative advantage grows as the
        # DRC tightens — the Table II trend.
        for dgap, (dp_l, fx_l) in results.items():
            assert dp_l > fx_l
        ratio_loose = results[2.5][0] / results[2.5][1]
        ratio_tight = results[5.0][0] / results[5.0][1]
        assert ratio_tight > ratio_loose * 0.9

    def test_upper_bound_decreases_with_dgap(self):
        bounds = []
        for dgap in (2.5, 4.0, 5.0):
            board, trace = make_table2_design(dgap)
            rules = board.rules.rules_for_points(trace.path.points)
            ext = TraceExtender(
                rules,
                board.member_routable_area(trace),
                board.obstacles,
                [],
                ExtensionConfig(max_iterations=800),
            ).extension_upper_bound(trace)
            bounds.append(ext.achieved)
        assert bounds[0] > bounds[1] > bounds[2]


class TestShowcases:
    def test_any_direction_group_matches(self):
        board = make_any_direction_design()
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        assert report.max_error() <= 1e-5
        assert check_board(board).is_clean()

    def test_msdtw_pipeline(self):
        board, pair = make_msdtw_case()
        report = LengthMatchingRouter(board).match_group(board.groups[0])
        m = report.members[0]
        assert abs(m.error()) < 0.01
        assert board.pairs[0].skew() <= 1e-6


class TestRegionAssignmentPipeline:
    def test_full_stack(self):
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        board = Board.with_rect_outline(0, 0, 120, 70, rules)
        group = MatchGroup("bus", target_length=140.0)
        traces = []
        for k, length in enumerate((95.0, 110.0, 100.0)):
            t = board.add_trace(
                Trace(
                    f"s{k}",
                    Polyline([Point(5, 15 + 20 * k), Point(5 + length, 15 + 20 * k)]),
                    width=1.0,
                )
            )
            traces.append(t)
            group.add(t)
        board.add_group(group)

        assignment = assign_regions(
            board, traces, {t.name: 140.0 for t in traces}, cell=8.0
        )
        apply_assignment(board, assignment)
        report = LengthMatchingRouter(board).match_group(group)
        assert report.max_error() <= 1e-5
        assert check_board(board).is_clean()
