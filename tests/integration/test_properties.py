"""Cross-cutting property-based tests on the routing invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ExtensionConfig, TraceExtender
from repro.drc import check_segment_lengths, check_self_clearance
from repro.dtw import convert_pair, restore_pair
from repro.geometry import Point, Polyline, rectangle, rotation_about
from repro.model import DesignRules, DifferentialPair, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)

slow = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def free_extender() -> TraceExtender:
    return TraceExtender(
        rules=RULES,
        area=rectangle(-200, -200, 300, 300),
        obstacles=[],
        other_traces=[],
        config=ExtensionConfig(),
    )


class TestExtensionInvariants:
    @slow
    @given(
        st.floats(min_value=40.0, max_value=120.0),
        st.floats(min_value=1.05, max_value=2.5),
    )
    def test_length_accounting_exact(self, length, factor):
        """achieved == original + sum of applied pattern gains == target."""
        trace = Trace("t", Polyline([Point(0, 0), Point(length, 0)]), width=1.0)
        target = length * factor
        result = free_extender().extend(trace, target)
        assert math.isclose(result.achieved, result.trace.length(), rel_tol=1e-12)
        assert math.isclose(result.achieved, target, abs_tol=1e-3)

    @slow
    @given(
        st.floats(min_value=0.0, max_value=2 * math.pi),
        st.floats(min_value=1.1, max_value=2.0),
    )
    def test_rotation_equivariance(self, angle, factor):
        """Any-direction: matching a rotated trace gives the rotated result
        of matching the original (up to float noise)."""
        length = 80.0
        base = Trace("t", Polyline([Point(0, 0), Point(length, 0)]), width=1.0)
        rot = rotation_about(Point(0, 0), angle)
        rotated = base.with_path(rot.apply_polyline(base.path))
        target = length * factor

        r0 = free_extender().extend(base, target)
        r1 = free_extender().extend(rotated, target)
        assert math.isclose(r0.achieved, r1.achieved, abs_tol=1e-6)

    @slow
    @given(st.floats(min_value=1.1, max_value=3.0))
    def test_result_always_drc_clean(self, factor):
        trace = Trace("t", Polyline([Point(0, 0), Point(90, 0)]), width=1.0)
        result = free_extender().extend(trace, 90.0 * factor)
        assert check_self_clearance(result.trace, RULES).is_clean()
        assert check_segment_lengths(result.trace, RULES).is_clean()

    @slow
    @given(st.floats(min_value=1.1, max_value=2.0))
    def test_monotone_no_overshoot(self, factor):
        trace = Trace("t", Polyline([Point(0, 0), Point(70, 0)]), width=1.0)
        result = free_extender().extend(trace, 70.0 * factor)
        assert result.achieved <= 70.0 * factor + 1e-6
        assert result.achieved >= 70.0 - 1e-9


class TestPairInvariants:
    @slow
    @given(
        st.floats(min_value=1.5, max_value=3.0),
        st.floats(min_value=1.1, max_value=1.6),
    )
    def test_restoration_keeps_rule_and_skew(self, rule, factor):
        width = rule * 0.4
        p = Trace("d_P", Polyline([Point(0, rule / 2), Point(80, rule / 2)]), width=width)
        n = Trace("d_N", Polyline([Point(0, -rule / 2), Point(80, -rule / 2)]), width=width)
        pair = DifferentialPair("d", p, n, rule=rule)
        conv = convert_pair(pair, RULES)
        ext = TraceExtender(
            rules=conv.virtual_rules,
            area=rectangle(-100, -100, 200, 100),
            obstacles=[],
            other_traces=[],
            config=ExtensionConfig(allow_node_feet=False),
        )
        extended = ext.extend(conv.median, conv.median.length() * factor)
        result = restore_pair(conv, extended.trace)
        assert result.pair.skew() <= 1e-6
        gaps = result.pair.coupling_gaps(samples=48)
        assert min(gaps) >= rule - 1e-6

    @slow
    @given(st.floats(min_value=1.5, max_value=3.0))
    def test_merge_restore_identity(self, rule):
        width = rule * 0.4
        p = Trace("d_P", Polyline([Point(0, rule / 2), Point(60, rule / 2)]), width=width)
        n = Trace("d_N", Polyline([Point(0, -rule / 2), Point(60, -rule / 2)]), width=width)
        pair = DifferentialPair("d", p, n, rule=rule)
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, conv.median, compensate=False)
        assert result.pair.trace_p.path.start.almost_equals(p.path.start, 1e-6)
        assert result.pair.trace_n.path.end.almost_equals(n.path.end, 1e-6)
        assert math.isclose(result.pair.length(), pair.length(), abs_tol=1e-6)
