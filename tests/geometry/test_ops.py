"""Unit tests for repro.geometry.ops."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    Polyline,
    cells_union_boundary,
    offset_polyline,
    polyline_from_pairs,
    polyline_inside_polygon,
    polyline_min_clearance,
    polyline_self_clearance,
    polyline_to_polygon_clearance,
    rectangle,
    resample_polyline,
)


class TestOffset:
    def test_straight_offset_parallel(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        off = offset_polyline(line, 2.0)
        assert off.start.almost_equals(Point(0, 2)) and off.end.almost_equals(Point(10, 2))

    def test_negative_offset_right_side(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        off = offset_polyline(line, -2.0)
        assert off.start.almost_equals(Point(0, -2))

    def test_zero_offset_identity(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        assert offset_polyline(line, 0.0) is line

    def test_right_angle_miter(self):
        line = polyline_from_pairs([(0, 0), (10, 0), (10, 10)])
        off = offset_polyline(line, 1.0)
        # Left offset of a left turn: inner corner at (9, 1).
        assert any(p.almost_equals(Point(9, 1), 1e-9) for p in off.points)

    def test_offset_length_symmetry_around_pattern(self):
        # A convex pattern's signed turns cancel; both offsets keep length.
        line = polyline_from_pairs([(0, 0), (10, 0), (10, 5), (14, 5), (14, 0), (30, 0)])
        assert math.isclose(offset_polyline(line, 1.0).length(), line.length())
        assert math.isclose(offset_polyline(line, -1.0).length(), line.length())

    def test_offset_distance_maintained_on_straights(self):
        line = polyline_from_pairs([(0, 0), (10, 0), (10, 10)])
        off = offset_polyline(line, 1.5)
        d = min(
            s.distance_to_point(Point(5, 1.5)) for s in line.segments()
        )
        assert math.isclose(d, 1.5)


class TestClearances:
    def test_min_clearance_parallel(self):
        a = polyline_from_pairs([(0, 0), (10, 0)])
        b = polyline_from_pairs([(0, 3), (10, 3)])
        assert math.isclose(polyline_min_clearance(a, b), 3.0)

    def test_min_clearance_crossing_zero(self):
        a = polyline_from_pairs([(0, 0), (10, 10)])
        b = polyline_from_pairs([(0, 10), (10, 0)])
        assert polyline_min_clearance(a, b) == 0.0

    def test_self_clearance_serpentine(self):
        line = polyline_from_pairs(
            [(0, 0), (2, 0), (2, 5), (6, 5), (6, 0), (10, 0), (10, 5), (14, 5), (14, 0), (16, 0)]
        )
        # Nearest non-adjacent approach: legs at x=6 and x=10.
        assert math.isclose(polyline_self_clearance(line), 4.0)

    def test_polygon_clearance(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        poly = rectangle(4, 2, 6, 4)
        assert math.isclose(polyline_to_polygon_clearance(line, poly), 2.0)

    def test_polygon_clearance_zero_when_crossing(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        poly = rectangle(4, -1, 6, 1)
        assert polyline_to_polygon_clearance(line, poly) == 0.0


class TestContainment:
    def test_inside(self):
        line = polyline_from_pairs([(1, 1), (9, 1), (9, 9)])
        assert polyline_inside_polygon(line, rectangle(0, 0, 10, 10))

    def test_node_outside(self):
        line = polyline_from_pairs([(1, 1), (11, 1)])
        assert not polyline_inside_polygon(line, rectangle(0, 0, 10, 10))

    def test_crossing_concave_region(self):
        # Both endpoints inside an L-shape, segment crossing the notch.
        from repro.geometry import Polygon

        l_shape = Polygon(
            [Point(0, 0), Point(3, 0), Point(3, 1), Point(1, 1), Point(1, 3), Point(0, 3)]
        )
        line = polyline_from_pairs([(0.5, 2.5), (2.5, 0.5)])
        assert not polyline_inside_polygon(line, l_shape)


class TestCellUnion:
    def test_single_cell(self):
        polys = cells_union_boundary([(0, 0, 1, 1)])
        assert len(polys) == 1
        assert math.isclose(polys[0].area(), 1.0)

    def test_two_adjacent_cells_merge(self):
        polys = cells_union_boundary([(0, 0, 1, 1), (1, 0, 2, 1)])
        assert len(polys) == 1
        assert math.isclose(polys[0].area(), 2.0)

    def test_square_block(self):
        cells = [(x, y, x + 1, y + 1) for x in range(3) for y in range(3)]
        polys = cells_union_boundary(cells)
        assert len(polys) == 1
        assert math.isclose(polys[0].area(), 9.0)
        # Collinear boundary nodes merged: a 3x3 block is just a square.
        assert len(polys[0]) == 4

    def test_disconnected_cells(self):
        polys = cells_union_boundary([(0, 0, 1, 1), (5, 5, 6, 6)])
        assert len(polys) == 2

    def test_l_shaped_block(self):
        cells = [(0, 0, 1, 1), (1, 0, 2, 1), (0, 1, 1, 2)]
        polys = cells_union_boundary(cells)
        assert len(polys) == 1
        assert math.isclose(polys[0].area(), 3.0)

    def test_contains_cell_interiors(self):
        cells = [(0, 0, 2, 1), (0, 1, 1, 2)]
        polys = cells_union_boundary(cells)
        poly = polys[0]
        assert poly.contains_point(Point(1.5, 0.5))
        assert poly.contains_point(Point(0.5, 1.5))
        assert not poly.contains_point(Point(1.5, 1.5))


class TestResample:
    def test_includes_endpoints(self):
        line = polyline_from_pairs([(0, 0), (10, 0)])
        pts = resample_polyline(line, 3.0)
        assert pts[0] == line.start and pts[-1].almost_equals(line.end)

    def test_spacing_at_most_step(self):
        line = polyline_from_pairs([(0, 0), (10, 0), (10, 10)])
        pts = resample_polyline(line, 2.5)
        for a, b in zip(pts, pts[1:]):
            assert a.distance_to(b) <= 2.5 + 1e-9

    def test_validates_step(self):
        with pytest.raises(ValueError):
            resample_polyline(polyline_from_pairs([(0, 0), (1, 0)]), 0.0)
