"""Unit tests for repro.geometry.primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import EPS, ORIGIN, Point, almost_equal, centroid, clamp, orientation

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPointArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_scalar_mul(self):
        assert Point(1, -2) * 3 == Point(3, -6)

    def test_rmul(self):
        assert 3 * Point(1, -2) == Point(3, -6)

    def test_div(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_neg(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_iter_unpacks(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestProducts:
    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_dot_orthogonal(self):
        assert Point(1, 0).dot(Point(0, 5)) == 0

    def test_cross_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) > 0
        assert Point(0, 1).cross(Point(1, 0)) < 0

    def test_cross_parallel_is_zero(self):
        assert Point(2, 2).cross(Point(4, 4)) == 0


class TestMetrics:
    def test_norm(self):
        assert Point(3, 4).norm() == 5

    def test_norm_sq(self):
        assert Point(3, 4).norm_sq() == 25

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5

    def test_distance_symmetry(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.0)
        assert a.distance_to(b) == b.distance_to(a)


class TestDirections:
    def test_normalized(self):
        n = Point(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_perpendicular_is_orthogonal(self):
        v = Point(3, 4)
        assert v.dot(v.perpendicular()) == 0

    def test_perpendicular_is_left(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_rotated_quarter(self):
        r = Point(1, 0).rotated(math.pi / 2)
        assert r.almost_equals(Point(0, 1), 1e-12)

    def test_angle(self):
        assert math.isclose(Point(0, 2).angle(), math.pi / 2)


class TestHelpers:
    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + EPS / 2)
        assert not almost_equal(1.0, 1.0 + 10 * EPS)

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert c.almost_equals(Point(1, 1))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_orientation_ccw(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_orientation_cw(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, -1)) == -1

    def test_orientation_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_origin(self):
        assert ORIGIN == Point(0.0, 0.0)

    def test_round_to(self):
        assert Point(1.23456789, -2.0).round_to(3) == Point(1.235, -2.0)


class TestPointProperties:
    @given(points, points)
    def test_distance_nonnegative_and_symmetric(self, a, b):
        assert a.distance_to(b) >= 0
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-9)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points)
    def test_add_sub_roundtrip(self, p):
        q = Point(3.25, -7.5)
        assert (p + q - q).almost_equals(p, 1e-6)

    @given(points)
    def test_cross_antisymmetric(self, p):
        q = Point(2.0, 5.0)
        assert math.isclose(p.cross(q), -q.cross(p), abs_tol=1e-3)

    @given(st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, angle):
        v = Point(3.0, 4.0)
        assert math.isclose(v.rotated(angle).norm(), 5.0, rel_tol=1e-9)
