"""Brute-force cross-checks for the spatial indexes.

:class:`SegmentGrid` promises a *superset*: every indexed segment within
``radius`` of the probe must be reported (false positives are allowed —
the DRC filters them with exact tests).  :class:`PointRangeTree` promises
exact range reporting.  Both are validated against O(N) oracles on
random inputs.
"""

import random

import pytest

from repro.geometry import (
    Point,
    PointRangeTree,
    Segment,
    SegmentGrid,
    brute_force_range,
)


def random_segments(rng, n, span=60.0, max_len=9.0):
    out = []
    for _ in range(n):
        a = Point(rng.uniform(-span, span), rng.uniform(-span, span))
        b = Point(
            a.x + rng.uniform(-max_len, max_len),
            a.y + rng.uniform(-max_len, max_len),
        )
        out.append(Segment(a, b))
    return out


class TestSegmentGrid:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("radius", [0.5, 2.0, 7.5])
    def test_query_is_superset_of_true_neighbours(self, seed, radius):
        rng = random.Random(seed)
        segments = random_segments(rng, 80)
        grid = SegmentGrid(cell=radius)
        for i, seg in enumerate(segments):
            grid.insert(seg, i)
        for probe in random_segments(rng, 20):
            hits = set(grid.query_segment(probe, radius))
            for i, seg in enumerate(segments):
                if probe.distance_to_segment(seg) <= radius:
                    assert i in hits, (seed, radius, i)

    @pytest.mark.parametrize("seed", range(6))
    def test_query_bounds_matches_bbox_oracle(self, seed):
        rng = random.Random(100 + seed)
        segments = random_segments(rng, 60)
        grid = SegmentGrid(cell=5.0)
        for i, seg in enumerate(segments):
            grid.insert(seg, i)
        for _ in range(15):
            x0, y0 = rng.uniform(-70, 60), rng.uniform(-70, 60)
            x1, y1 = x0 + rng.uniform(0, 25), y0 + rng.uniform(0, 25)
            expected = [
                i
                for i, seg in enumerate(segments)
                if (lambda b: b[0] <= x1 and x0 <= b[2] and b[1] <= y1 and y0 <= b[3])(
                    seg.bounds()
                )
            ]
            assert grid.query_bounds(x0, y0, x1, y1) == expected

    def test_payloads_come_back_in_insertion_order(self):
        grid = SegmentGrid(cell=4.0)
        segs = [Segment(Point(x, 0), Point(x + 1, 0)) for x in (3.0, 0.0, 1.5)]
        for k, seg in enumerate(segs):
            grid.insert(seg, f"s{k}")
        assert grid.query_bounds(-1, -1, 6, 1) == ["s0", "s1", "s2"]

    @pytest.mark.parametrize("seed", range(6))
    def test_insert_bounds_matches_segment_insert(self, seed):
        # Raw-box insertion is the same indexing segments get — a grid
        # fed seg.bounds() directly must answer every query identically.
        rng = random.Random(200 + seed)
        segments = random_segments(rng, 50)
        by_seg = SegmentGrid(cell=5.0)
        by_box = SegmentGrid(cell=5.0)
        for i, seg in enumerate(segments):
            by_seg.insert(seg, i)
            assert by_box.insert_bounds(seg.bounds(), i) == i
        for _ in range(15):
            x0, y0 = rng.uniform(-70, 60), rng.uniform(-70, 60)
            x1, y1 = x0 + rng.uniform(0, 25), y0 + rng.uniform(0, 25)
            assert by_box.query_bounds(x0, y0, x1, y1) == by_seg.query_bounds(
                x0, y0, x1, y1
            )

    def test_insert_bounds_accepts_degenerate_boxes(self):
        grid = SegmentGrid(cell=2.0)
        grid.insert_bounds((1.0, 1.0, 1.0, 1.0), "pt")
        assert grid.query_bounds(0.0, 0.0, 2.0, 2.0) == ["pt"]
        assert grid.query_bounds(1.5, 1.5, 3.0, 3.0) == []

    def test_default_payload_is_index(self):
        grid = SegmentGrid(cell=1.0)
        assert grid.insert(Segment(Point(0, 0), Point(1, 0))) == 0
        assert grid.query_segment(Segment(Point(0, 0), Point(1, 0)), 0.5) == [0]

    def test_invalid_cell_rejected(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                SegmentGrid(cell=bad)

    def test_len(self):
        grid = SegmentGrid(cell=1.0)
        assert len(grid) == 0
        grid.insert(Segment(Point(0, 0), Point(5, 5)))
        assert len(grid) == 1


class TestPointRangeTreeRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_points_match_brute_force(self, seed):
        rng = random.Random(seed)
        points = [
            Point(rng.uniform(-50, 50), rng.uniform(-50, 50))
            for _ in range(rng.randint(1, 120))
        ]
        tree = PointRangeTree(points)
        for _ in range(20):
            x0, y0 = rng.uniform(-60, 50), rng.uniform(-60, 50)
            x1, y1 = x0 + rng.uniform(0, 40), y0 + rng.uniform(0, 40)
            assert sorted(tree.query(x0, x1, y0, y1)) == brute_force_range(
                points, x0, x1, y0, y1
            )

    def test_duplicate_coordinates(self):
        rng = random.Random(7)
        points = [
            Point(rng.choice([0.0, 1.0, 2.0]), rng.choice([0.0, 1.0, 2.0]))
            for _ in range(60)
        ]
        tree = PointRangeTree(points)
        for _ in range(10):
            x0, x1 = sorted((rng.uniform(-1, 3), rng.uniform(-1, 3)))
            y0, y1 = sorted((rng.uniform(-1, 3), rng.uniform(-1, 3)))
            assert sorted(tree.query(x0, x1, y0, y1)) == brute_force_range(
                points, x0, x1, y0, y1
            )
