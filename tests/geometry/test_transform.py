"""Unit tests for repro.geometry.transform — the any-direction machinery."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Frame, Point, Polygon, Polyline, Segment, rectangle, rotation_about

angles = st.floats(min_value=-math.pi, max_value=math.pi)
coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


def seg_at(angle: float, length: float = 10.0, origin: Point = Point(0, 0)) -> Segment:
    d = Point(math.cos(angle), math.sin(angle))
    return Segment(origin, origin + d * length)


class TestFrameBasics:
    def test_identity(self):
        f = Frame.identity()
        p = Point(3, 4)
        assert f.to_local(p) == p and f.to_world(p) == p

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            Frame.from_segment(seg_at(0.0), direction=2)

    def test_segment_maps_to_x_axis(self):
        s = seg_at(math.radians(37), 8.0)
        f = Frame.from_segment(s, 1)
        assert f.to_local(s.a).almost_equals(Point(0, 0), 1e-9)
        assert f.to_local(s.b).almost_equals(Point(8, 0), 1e-9)

    def test_left_side_is_positive_y(self):
        s = Segment(Point(0, 0), Point(10, 0))
        f = Frame.from_segment(s, 1)
        assert f.to_local(Point(5, 3)).y > 0

    def test_mirrored_frame_flips_side(self):
        s = Segment(Point(0, 0), Point(10, 0))
        f = Frame.from_segment(s, -1)
        assert f.to_local(Point(5, -3)).y > 0

    def test_is_valid(self):
        assert Frame.from_segment(seg_at(1.1), 1).is_valid()

    def test_angle(self):
        f = Frame.from_segment(seg_at(math.radians(30)), 1)
        assert math.isclose(f.angle(), math.radians(30), abs_tol=1e-12)


class TestRoundTrips:
    @given(angles, coords, coords)
    def test_point_roundtrip(self, angle, x, y):
        f = Frame.from_segment(seg_at(angle, 10.0, Point(3, -7)), 1)
        p = Point(x, y)
        assert f.to_world(f.to_local(p)).almost_equals(p, 1e-6)

    @given(angles, coords, coords)
    def test_mirrored_roundtrip(self, angle, x, y):
        f = Frame.from_segment(seg_at(angle, 5.0), -1)
        p = Point(x, y)
        assert f.to_world(f.to_local(p)).almost_equals(p, 1e-6)

    @given(angles)
    def test_distances_preserved(self, angle):
        f = Frame.from_segment(seg_at(angle), 1)
        a, b = Point(1, 2), Point(-4, 7)
        assert math.isclose(
            f.to_local(a).distance_to(f.to_local(b)), a.distance_to(b), rel_tol=1e-9
        )

    def test_polygon_roundtrip(self):
        f = Frame.from_segment(seg_at(0.7), 1)
        poly = rectangle(1, 1, 4, 3)
        back = f.polygon_to_world(f.polygon_to_local(poly))
        for p, q in zip(poly.points, back.points):
            assert p.almost_equals(q, 1e-9)

    def test_polyline_roundtrip(self):
        f = Frame.from_segment(seg_at(-1.2), -1)
        line = Polyline([Point(0, 0), Point(3, 1), Point(5, -2)])
        back = f.polyline_to_world(f.polyline_to_local(line))
        for p, q in zip(line.points, back.points):
            assert p.almost_equals(q, 1e-9)

    def test_area_preserved_under_mirror(self):
        f = Frame.from_segment(seg_at(0.3), -1)
        poly = rectangle(0, 0, 3, 2)
        assert math.isclose(f.polygon_to_local(poly).area(), poly.area(), rel_tol=1e-9)


class TestRotation:
    def test_rotation_about_center(self):
        rot = rotation_about(Point(1, 1), math.pi / 2)
        assert rot.apply(Point(2, 1)).almost_equals(Point(1, 2), 1e-12)

    def test_rotation_preserves_distances(self):
        rot = rotation_about(Point(5, -3), 0.77)
        a, b = Point(0, 0), Point(3, 4)
        assert math.isclose(
            rot.apply(a).distance_to(rot.apply(b)), 5.0, rel_tol=1e-12
        )

    def test_rotation_polyline_length(self):
        rot = rotation_about(Point(0, 0), 1.0)
        line = Polyline([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert math.isclose(rot.apply_polyline(line).length(), line.length(), rel_tol=1e-12)
