"""Unit tests for repro.geometry.polygon."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    Polygon,
    Segment,
    convex_hull,
    oriented_rectangle,
    rectangle,
    regular_polygon,
)


@pytest.fixture
def unit_square() -> Polygon:
    return rectangle(0, 0, 1, 1)


@pytest.fixture
def l_shape() -> Polygon:
    """A concave L: the unit square minus its top-right quadrant."""
    return Polygon(
        [
            Point(0, 0),
            Point(2, 0),
            Point(2, 1),
            Point(1, 1),
            Point(1, 2),
            Point(0, 2),
        ]
    )


class TestConstruction:
    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 0)])

    def test_rectangle_validates(self):
        with pytest.raises(ValueError):
            rectangle(0, 0, 0, 1)

    def test_regular_polygon_sides(self):
        assert len(regular_polygon(Point(0, 0), 1.0, 8)) == 8

    def test_regular_polygon_validates(self):
        with pytest.raises(ValueError):
            regular_polygon(Point(0, 0), 1.0, 2)


class TestMeasures:
    def test_square_area(self, unit_square):
        assert unit_square.area() == 1.0

    def test_l_shape_area(self, l_shape):
        assert l_shape.area() == 3.0

    def test_perimeter(self, unit_square):
        assert unit_square.perimeter() == 4.0

    def test_signed_area_ccw_positive(self, unit_square):
        assert unit_square.signed_area() > 0

    def test_orientation_flip(self, unit_square):
        cw = Polygon(reversed(unit_square.points))
        assert cw.signed_area() < 0
        assert cw.oriented_ccw().signed_area() > 0

    def test_bounds(self, l_shape):
        assert l_shape.bounds() == (0, 0, 2, 2)

    def test_centroid_square(self, unit_square):
        assert unit_square.centroid().almost_equals(Point(0.5, 0.5))

    def test_convexity(self, unit_square, l_shape):
        assert unit_square.is_convex()
        assert not l_shape.is_convex()

    def test_octagon_area_close_to_circle(self):
        oct_area = regular_polygon(Point(0, 0), 1.0, 64).area()
        assert math.isclose(oct_area, math.pi, rel_tol=0.01)


class TestContainment:
    def test_interior(self, unit_square):
        assert unit_square.contains_point(Point(0.5, 0.5))

    def test_exterior(self, unit_square):
        assert not unit_square.contains_point(Point(1.5, 0.5))

    def test_boundary_counts(self, unit_square):
        assert unit_square.contains_point(Point(1.0, 0.5))

    def test_vertex_counts(self, unit_square):
        assert unit_square.contains_point(Point(0, 0))

    def test_concave_notch_outside(self, l_shape):
        assert not l_shape.contains_point(Point(1.5, 1.5))

    def test_concave_arm_inside(self, l_shape):
        assert l_shape.contains_point(Point(0.5, 1.5))
        assert l_shape.contains_point(Point(1.5, 0.5))


class TestSegmentInteraction:
    def test_crossing_segment(self, unit_square):
        assert unit_square.intersects_segment(Segment(Point(-1, 0.5), Point(2, 0.5)))

    def test_contained_segment(self, unit_square):
        assert unit_square.intersects_segment(Segment(Point(0.2, 0.2), Point(0.8, 0.8)))

    def test_outside_segment(self, unit_square):
        assert not unit_square.intersects_segment(Segment(Point(2, 2), Point(3, 3)))

    def test_distance_to_segment_outside(self, unit_square):
        d = unit_square.distance_to_segment(Segment(Point(2, 0), Point(2, 1)))
        assert math.isclose(d, 1.0)

    def test_distance_zero_when_crossing(self, unit_square):
        assert unit_square.distance_to_segment(Segment(Point(-1, 0.5), Point(2, 0.5))) == 0


class TestPolygonInteraction:
    def test_overlapping(self, unit_square):
        other = rectangle(0.5, 0.5, 2, 2)
        assert unit_square.intersects_polygon(other)

    def test_disjoint(self, unit_square):
        other = rectangle(3, 3, 4, 4)
        assert not unit_square.intersects_polygon(other)

    def test_nested(self, unit_square):
        inner = rectangle(0.25, 0.25, 0.75, 0.75)
        assert unit_square.intersects_polygon(inner)
        assert unit_square.contains_polygon(inner)

    def test_contains_rejects_crossing(self, unit_square):
        other = rectangle(0.5, 0.5, 2, 2)
        assert not unit_square.contains_polygon(other)

    def test_distance_between_polygons(self, unit_square):
        other = rectangle(3, 0, 4, 1)
        assert math.isclose(unit_square.distance_to_polygon(other), 2.0)

    def test_point_distance_inside_zero(self, unit_square):
        assert unit_square.distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_point_distance_outside(self, unit_square):
        assert math.isclose(unit_square.distance_to_point(Point(3, 0.5)), 2.0)


class TestInflation:
    def test_square_inflated_area(self, unit_square):
        big = unit_square.inflated(0.5)
        # Miter inflation of a square grows it to a square of side 2.
        assert math.isclose(big.area(), 4.0)

    def test_inflation_contains_original(self, unit_square):
        big = unit_square.inflated(0.3)
        assert big.contains_polygon(unit_square)

    def test_zero_inflation_identity(self, unit_square):
        assert unit_square.inflated(0.0) is unit_square

    def test_octagon_inflation_distance(self):
        octagon = regular_polygon(Point(0, 0), 2.0, 8)
        big = octagon.inflated(0.5)
        # Every original vertex must now be at least 0.5 inside.
        for p in octagon.points:
            assert big.contains_point(p)

    def test_inflation_of_cw_polygon(self):
        cw = Polygon(reversed(rectangle(0, 0, 1, 1).points))
        big = cw.inflated(0.5)
        assert math.isclose(big.area(), 4.0)


class TestOrientedRectangle:
    def test_axis_aligned(self):
        r = oriented_rectangle(Segment(Point(0, 0), Point(10, 0)), 1.0)
        assert math.isclose(r.area(), 12 * 2)  # extended by half-width at both ends

    def test_contains_segment_band(self):
        s = Segment(Point(0, 0), Point(10, 10))
        r = oriented_rectangle(s, 1.0)
        assert r.contains_point(s.midpoint())
        assert r.contains_point(s.a) and r.contains_point(s.b)

    def test_clearance_semantics(self):
        s = Segment(Point(0, 0), Point(10, 0))
        r = oriented_rectangle(s, 2.0)
        assert r.contains_point(Point(5, 1.9))
        assert not r.contains_point(Point(5, 2.1))


class TestConvexHull:
    def test_square_hull(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = convex_hull(pts)
        assert math.isclose(hull.area(), 1.0)

    def test_hull_is_convex(self):
        pts = [Point(0, 0), Point(4, 1), Point(2, 5), Point(-1, 2), Point(1, 1)]
        assert convex_hull(pts).is_convex()

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])


coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestPolygonProperties:
    @given(
        st.lists(st.tuples(coords, coords), min_size=4, max_size=20).filter(
            lambda pts: len({(round(x, 6), round(y, 6)) for x, y in pts}) >= 4
        )
    )
    def test_hull_contains_all_points(self, pts):
        points = [Point(x, y) for x, y in pts]
        try:
            hull = convex_hull(points)
        except ValueError:
            return  # collinear input
        for p in points:
            assert hull.contains_point(p, 1e-6)

    @given(coords, coords, st.floats(min_value=0.1, max_value=10))
    def test_square_containment_vs_bounds(self, cx, cy, half):
        sq = rectangle(cx - half, cy - half, cx + half, cy + half)
        assert sq.contains_point(Point(cx, cy))
        assert not sq.contains_point(Point(cx + 3 * half, cy))
