"""Unit tests for repro.geometry.polyline."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Polyline, polyline_from_pairs


def line(*pairs) -> Polyline:
    return polyline_from_pairs(pairs)


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0)])

    def test_from_pairs(self):
        l = line((0, 0), (1, 0))
        assert l.start == Point(0, 0) and l.end == Point(1, 0)

    def test_len(self):
        assert len(line((0, 0), (1, 0), (2, 0))) == 3

    def test_immutable_points_tuple(self):
        l = line((0, 0), (1, 0))
        assert isinstance(l.points, tuple)


class TestMeasures:
    def test_length_straight(self):
        assert line((0, 0), (10, 0)).length() == 10

    def test_length_bent(self):
        assert line((0, 0), (3, 0), (3, 4)).length() == 7

    def test_bounds(self):
        assert line((0, 1), (5, -2), (3, 7)).bounds() == (0, -2, 5, 7)

    def test_min_segment_length(self):
        assert line((0, 0), (1, 0), (5, 0)).min_segment_length() == 1

    def test_segments_count(self):
        assert len(line((0, 0), (1, 0), (2, 1)).segments()) == 2

    def test_segment_indexing(self):
        s = line((0, 0), (1, 0), (2, 1)).segment(1)
        assert s.a == Point(1, 0) and s.b == Point(2, 1)


class TestArcLength:
    def test_start(self):
        assert line((0, 0), (10, 0)).point_at_arclength(0) == Point(0, 0)

    def test_middle(self):
        assert line((0, 0), (10, 0)).point_at_arclength(4).almost_equals(Point(4, 0))

    def test_across_corner(self):
        p = line((0, 0), (5, 0), (5, 5)).point_at_arclength(7)
        assert p.almost_equals(Point(5, 2))

    def test_clamps_beyond_end(self):
        assert line((0, 0), (10, 0)).point_at_arclength(99).almost_equals(Point(10, 0))

    def test_negative_clamps_to_start(self):
        assert line((0, 0), (10, 0)).point_at_arclength(-1) == Point(0, 0)


class TestEdits:
    def test_replace_segment_inserts_detour(self):
        l = line((0, 0), (10, 0))
        chain = [Point(0, 0), Point(4, 0), Point(4, 3), Point(6, 3), Point(6, 0), Point(10, 0)]
        out = l.replace_segment(0, chain)
        assert out.length() == 16
        assert out.start == l.start and out.end == l.end

    def test_replace_segment_validates_start(self):
        l = line((0, 0), (10, 0))
        with pytest.raises(ValueError):
            l.replace_segment(0, [Point(1, 0), Point(10, 0)])

    def test_replace_segment_validates_end(self):
        l = line((0, 0), (10, 0))
        with pytest.raises(ValueError):
            l.replace_segment(0, [Point(0, 0), Point(9, 0)])

    def test_replace_middle_segment(self):
        l = line((0, 0), (5, 0), (10, 0), (15, 0))
        chain = [Point(5, 0), Point(5, 2), Point(10, 2), Point(10, 0)]
        out = l.replace_segment(1, chain)
        assert out.length() == l.length() + 4

    def test_translated(self):
        out = line((0, 0), (1, 1)).translated(Point(5, -1))
        assert out.start == Point(5, -1) and out.end == Point(6, 0)

    def test_reversed(self):
        out = line((0, 0), (1, 0), (2, 2)).reversed()
        assert out.start == Point(2, 2) and out.end == Point(0, 0)


class TestSimplify:
    def test_removes_duplicates(self):
        l = Polyline([Point(0, 0), Point(0, 0), Point(5, 0)])
        assert len(l.simplified()) == 2

    def test_merges_collinear(self):
        l = line((0, 0), (3, 0), (7, 0), (10, 0))
        assert len(l.simplified()) == 2

    def test_keeps_corners(self):
        l = line((0, 0), (5, 0), (5, 5))
        assert len(l.simplified()) == 3

    def test_preserves_length_of_forward_chain(self):
        l = line((0, 0), (2, 0), (4, 0), (4, 3), (4, 6))
        s = l.simplified()
        assert math.isclose(s.length(), l.length())

    def test_endpoints_kept(self):
        l = line((0, 0), (1, 0), (2, 0))
        s = l.simplified()
        assert s.start == l.start and s.end == l.end


class TestNodeAngles:
    def test_straight_is_pi(self):
        angles = line((0, 0), (1, 0), (2, 0)).node_angles()
        assert math.isclose(angles[0], math.pi)

    def test_right_angle(self):
        angles = line((0, 0), (1, 0), (1, 1)).node_angles()
        assert math.isclose(angles[0], math.pi / 2)

    def test_count(self):
        assert len(line((0, 0), (1, 0), (2, 1), (3, 1)).node_angles()) == 2


coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestPolylineProperties:
    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12))
    def test_length_is_sum_of_segments(self, pts):
        l = polyline_from_pairs(pts)
        assert math.isclose(
            l.length(), sum(s.length() for s in l.segments()), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12))
    def test_reverse_preserves_length(self, pts):
        l = polyline_from_pairs(pts)
        assert math.isclose(l.length(), l.reversed().length(), rel_tol=1e-12, abs_tol=1e-9)

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12))
    def test_simplify_never_lengthens(self, pts):
        l = polyline_from_pairs(pts)
        assert l.simplified().length() <= l.length() + 1e-6
