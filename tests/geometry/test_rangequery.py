"""Unit tests for the Sec. IV-D range tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, PointRangeTree, brute_force_range

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_empty_tree(self):
        tree = PointRangeTree([])
        assert tree.query(-1, 1, -1, 1) == []
        assert len(tree) == 0

    def test_single_point_hit(self):
        tree = PointRangeTree([Point(0, 0)])
        assert tree.query(-1, 1, -1, 1) == [0]

    def test_single_point_miss_x(self):
        tree = PointRangeTree([Point(5, 0)])
        assert tree.query(-1, 1, -1, 1) == []

    def test_single_point_miss_y(self):
        tree = PointRangeTree([Point(0, 5)])
        assert tree.query(-1, 1, -1, 1) == []

    def test_grid_window(self):
        pts = [Point(x, y) for x in range(5) for y in range(5)]
        tree = PointRangeTree(pts)
        hits = tree.query(1, 3, 1, 3)
        assert len(hits) == 9

    def test_inclusive_boundaries(self):
        tree = PointRangeTree([Point(1, 1)])
        assert tree.query(1, 1, 1, 1) == [0]

    def test_inverted_window_empty(self):
        tree = PointRangeTree([Point(0, 0)])
        assert tree.query(1, -1, -1, 1) == []

    def test_query_points_returns_points(self):
        pts = [Point(0, 0), Point(2, 2)]
        tree = PointRangeTree(pts)
        assert tree.query_points(-1, 1, -1, 1) == [Point(0, 0)]

    def test_duplicate_points_all_reported(self):
        pts = [Point(1, 1), Point(1, 1), Point(1, 1)]
        tree = PointRangeTree(pts)
        assert sorted(tree.query(0, 2, 0, 2)) == [0, 1, 2]


class TestAgainstBruteForce:
    @settings(max_examples=60)
    @given(
        st.lists(st.tuples(coords, coords), min_size=0, max_size=60),
        coords,
        coords,
        coords,
        coords,
    )
    def test_matches_brute_force(self, pts, x1, x2, y1, y2):
        points = [Point(x, y) for x, y in pts]
        xmin, xmax = min(x1, x2), max(x1, x2)
        ymin, ymax = min(y1, y2), max(y1, y2)
        tree = PointRangeTree(points)
        expected = sorted(brute_force_range(points, xmin, xmax, ymin, ymax))
        assert sorted(tree.query(xmin, xmax, ymin, ymax)) == expected

    def test_large_structured_set(self):
        points = [Point(i % 37, (i * 7) % 31) for i in range(500)]
        tree = PointRangeTree(points)
        expected = sorted(brute_force_range(points, 5, 20, 3, 17))
        assert sorted(tree.query(5, 20, 3, 17)) == expected
