"""Unit tests for repro.geometry.segment."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    Segment,
    angle_between,
    collinear_overlap,
    segment_crosses_horizontal_line,
    segment_crosses_vertical_line,
    segment_intersection_point,
    segments_intersect,
)

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def seg(ax, ay, bx, by) -> Segment:
    return Segment(Point(ax, ay), Point(bx, by))


class TestBasics:
    def test_length(self):
        assert seg(0, 0, 3, 4).length() == 5

    def test_degenerate(self):
        assert seg(1, 1, 1, 1).is_degenerate()
        assert not seg(0, 0, 1, 0).is_degenerate()

    def test_direction(self):
        assert seg(0, 0, 5, 0).direction() == Point(1, 0)

    def test_normal_is_left(self):
        assert seg(0, 0, 1, 0).normal().almost_equals(Point(0, 1))

    def test_midpoint(self):
        assert seg(0, 0, 4, 2).midpoint() == Point(2, 1)

    def test_reversed(self):
        s = seg(0, 0, 1, 2).reversed()
        assert s.a == Point(1, 2) and s.b == Point(0, 0)

    def test_point_at(self):
        assert seg(0, 0, 10, 0).point_at(0.3).almost_equals(Point(3, 0))

    def test_bounds(self):
        assert seg(3, -1, 0, 4).bounds() == (0, -1, 3, 4)


class TestProjection:
    def test_project_interior(self):
        assert math.isclose(seg(0, 0, 10, 0).project_param(Point(4, 5)), 0.4)

    def test_project_clamps_before(self):
        assert seg(0, 0, 10, 0).project_param(Point(-5, 2)) == 0.0

    def test_project_clamps_after(self):
        assert seg(0, 0, 10, 0).project_param(Point(15, 2)) == 1.0

    def test_closest_point(self):
        assert seg(0, 0, 10, 0).closest_point(Point(4, 5)).almost_equals(Point(4, 0))

    def test_distance_to_point(self):
        assert math.isclose(seg(0, 0, 10, 0).distance_to_point(Point(5, 3)), 3)

    def test_distance_to_point_beyond_end(self):
        assert math.isclose(seg(0, 0, 10, 0).distance_to_point(Point(13, 4)), 5)


class TestIntersection:
    def test_crossing(self):
        assert segments_intersect(seg(0, 0, 2, 2), seg(0, 2, 2, 0))

    def test_disjoint(self):
        assert not segments_intersect(seg(0, 0, 1, 0), seg(0, 1, 1, 1))

    def test_touching_endpoint_counts(self):
        assert segments_intersect(seg(0, 0, 1, 0), seg(1, 0, 2, 5))

    def test_parallel_non_collinear(self):
        assert not segments_intersect(seg(0, 0, 5, 0), seg(0, 1, 5, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect(seg(0, 0, 5, 0), seg(3, 0, 8, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect(seg(0, 0, 2, 0), seg(3, 0, 5, 0))

    def test_t_junction(self):
        assert segments_intersect(seg(0, 0, 10, 0), seg(5, -1, 5, 0))

    def test_intersection_point_crossing(self):
        p = segment_intersection_point(seg(0, 0, 2, 2), seg(0, 2, 2, 0))
        assert p.almost_equals(Point(1, 1))

    def test_intersection_point_none(self):
        assert segment_intersection_point(seg(0, 0, 1, 0), seg(0, 1, 1, 1)) is None

    def test_intersection_point_collinear_mid(self):
        p = segment_intersection_point(seg(0, 0, 10, 0), seg(4, 0, 6, 0))
        assert p is not None and seg(4, 0, 6, 0).contains_point(p)

    def test_symmetry(self):
        a, b = seg(0, 0, 2, 2), seg(0, 2, 2, 0)
        assert segments_intersect(a, b) == segments_intersect(b, a)


class TestCollinearOverlap:
    def test_overlap_segment(self):
        ov = collinear_overlap(seg(0, 0, 10, 0), seg(4, 0, 15, 0))
        assert ov is not None
        assert ov.a.almost_equals(Point(4, 0)) and ov.b.almost_equals(Point(10, 0))

    def test_no_overlap(self):
        assert collinear_overlap(seg(0, 0, 2, 0), seg(5, 0, 9, 0)) is None

    def test_not_collinear(self):
        assert collinear_overlap(seg(0, 0, 2, 0), seg(0, 1, 2, 1)) is None

    def test_shared_endpoint_degenerate(self):
        ov = collinear_overlap(seg(0, 0, 2, 0), seg(2, 0, 5, 0))
        assert ov is not None and ov.length() <= 1e-9


class TestDistances:
    def test_distance_intersecting_zero(self):
        assert seg(0, 0, 2, 2).distance_to_segment(seg(0, 2, 2, 0)) == 0.0

    def test_distance_parallel(self):
        assert math.isclose(seg(0, 0, 5, 0).distance_to_segment(seg(0, 3, 5, 3)), 3)

    def test_distance_skew(self):
        assert math.isclose(seg(0, 0, 1, 0).distance_to_segment(seg(4, 0, 5, 0)), 3)

    def test_angle_between_perpendicular(self):
        assert math.isclose(angle_between(seg(0, 0, 1, 0), seg(0, 0, 0, 2)), math.pi / 2)

    def test_angle_between_parallel(self):
        assert math.isclose(angle_between(seg(0, 0, 1, 0), seg(5, 5, 9, 5)), 0, abs_tol=1e-9)


class TestLineCrossings:
    def test_vertical_crossing(self):
        y = segment_crosses_vertical_line(seg(0, 1, 4, 5), 2.0, 0.0, 10.0)
        assert math.isclose(y, 3.0)

    def test_vertical_no_crossing(self):
        assert segment_crosses_vertical_line(seg(3, 1, 4, 5), 2.0, 0.0, 10.0) is None

    def test_vertical_out_of_span(self):
        assert segment_crosses_vertical_line(seg(0, 20, 4, 24), 2.0, 0.0, 10.0) is None

    def test_vertical_collinear_returns_lowest(self):
        y = segment_crosses_vertical_line(seg(2, 3, 2, 8), 2.0, 0.0, 10.0)
        assert math.isclose(y, 3.0)

    def test_horizontal_crossing(self):
        x = segment_crosses_horizontal_line(seg(1, 0, 5, 4), 2.0, 0.0, 10.0)
        assert math.isclose(x, 3.0)

    def test_horizontal_none(self):
        assert segment_crosses_horizontal_line(seg(1, 5, 5, 9), 2.0, 0.0, 10.0) is None


class TestSegmentProperties:
    @given(points, points, points)
    def test_distance_to_point_bounded_by_endpoints(self, a, b, p):
        s = Segment(a, b)
        d = s.distance_to_point(p)
        assert d <= a.distance_to(p) + 1e-6
        assert d <= b.distance_to(p) + 1e-6

    @given(points, points)
    def test_self_intersection(self, a, b):
        s = Segment(a, b)
        assert segments_intersect(s, s)

    @given(points, points, points, points)
    def test_intersection_symmetry(self, a, b, c, d):
        s1, s2 = Segment(a, b), Segment(c, d)
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)

    def test_intersection_symmetry_near_parallel_regression(self):
        # Hypothesis falsifying example: two steep, nearly-parallel
        # segments whose true minimum distance (~2e-7) just exceeds EPS.
        # One argument order used to fall into the collinear interval
        # test (reporting an intersection) while the other did not; the
        # predicate must be symmetric, and here correctly disjoint.
        s1 = Segment(Point(0.0, 1.0), Point(1e-05, -49.0))
        s2 = Segment(Point(0.0, 0.0), Point(1e-05, -100.0))
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)
        assert not segments_intersect(s1, s2)

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_point_at_on_segment(self, a, b, t):
        s = Segment(a, b)
        assert s.distance_to_point(s.point_at(t)) <= 1e-6 * max(1.0, s.length())
