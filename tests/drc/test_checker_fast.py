"""Equivalence tests: grid-indexed DRC vs. the exhaustive sweep.

``check_board`` (fast, default) must report the *identical* violation
set — same kinds, subjects, measurements, locations, and order — as
``check_board(..., exhaustive=True)`` on randomized boards that actually
violate (crossing traces, tight pairs, vias on copper) and on the clean
bench designs.
"""

import random

import pytest

from repro.bench.designs import make_msdtw_case, make_table1_case, make_table2_design
from repro.drc import check_board
from repro.geometry import Point, Polyline
from repro.io import drc_report_to_dict
from repro.model import Board, DesignRules, DifferentialPair, Trace, via


def random_dirty_board(seed, n_traces=6, n_obstacles=5):
    """Random meandering traces + vias + one pair in a 100x100 box.

    No care is taken to avoid violations — that is the point: both sweeps
    must agree on the dirty findings, not just on clean boards.
    """
    rng = random.Random(seed)
    rules = DesignRules(dgap=3.0, dobs=1.5, dprotect=1.0)
    board = Board.with_rect_outline(-10, -10, 110, 110, rules=rules)
    for t in range(n_traces):
        x, y = rng.uniform(0, 20), rng.uniform(0, 100)
        pts = [Point(x, y)]
        for _ in range(rng.randint(2, 12)):
            x += rng.uniform(1.5, 12.0)
            y += rng.uniform(-6.0, 6.0)
            pts.append(Point(x, y))
        board.add_trace(
            Trace(name=f"t{t}", path=Polyline(pts), width=0.5 + rng.random())
        )
    for o in range(n_obstacles):
        board.add_obstacle(
            via(
                Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                radius=1.0 + rng.random(),
                name=f"v{o}",
            )
        )
    y0 = rng.uniform(20, 80)
    board.add_pair(
        DifferentialPair(
            name="pr",
            trace_p=Trace(
                name="pP",
                path=Polyline([Point(0, y0), Point(60, y0 + rng.uniform(-3, 3))]),
                width=0.4,
            ),
            trace_n=Trace(
                name="pN",
                path=Polyline([Point(0, y0 + 1.2), Point(60, y0 + 1.2)]),
                width=0.4,
            ),
            rule=1.2,
        )
    )
    return board


def assert_reports_identical(board, check_areas=False):
    fast = check_board(board, check_areas=check_areas)
    exhaustive = check_board(board, check_areas=check_areas, exhaustive=True)
    assert drc_report_to_dict(fast) == drc_report_to_dict(exhaustive)
    return fast


class TestRandomBoards:
    @pytest.mark.parametrize("seed", range(20))
    def test_dirty_boards_identical(self, seed):
        board = random_dirty_board(seed)
        report = assert_reports_identical(board)
        # The workload must actually exercise violations, not vacuously pass.
        if seed < 12:
            assert len(report) > 0

    def test_dense_collision_board(self):
        # Everything on top of everything: worst case for tie ordering.
        rng = random.Random(99)
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        board = Board.with_rect_outline(-5, -5, 45, 45, rules=rules)
        for t in range(8):
            y = 2.0 + t * 1.1  # well inside d_gap of each other
            board.add_trace(
                Trace(
                    name=f"d{t}",
                    path=Polyline(
                        [Point(0, y), Point(20, y + rng.uniform(-0.5, 0.5)), Point(40, y)]
                    ),
                    width=0.8,
                )
            )
        board.add_obstacle(via(Point(20.0, 5.0), radius=2.0, name="hit"))
        report = assert_reports_identical(board)
        assert len(report) > 10


class TestBenchDesigns:
    def test_table1_unrouted(self):
        board, _ = make_table1_case(1)
        assert_reports_identical(board, check_areas=True)

    def test_table1_routed(self):
        from repro.api import RoutingSession, SessionConfig

        board, _ = make_table1_case(1)
        RoutingSession(board, config=SessionConfig.preset("bench")).run()
        report = assert_reports_identical(board, check_areas=True)
        assert report.is_clean()

    def test_table2_via_field(self):
        board, _ = make_table2_design(2.5)
        assert_reports_identical(board, check_areas=True)

    def test_msdtw_pair_with_dras(self):
        board, _ = make_msdtw_case()
        assert_reports_identical(board, check_areas=True)


class TestEmptyAndDegenerate:
    def test_empty_board(self):
        board = Board.with_rect_outline(0, 0, 10, 10)
        assert_reports_identical(board)

    def test_single_trace(self):
        board = Board.with_rect_outline(0, 0, 10, 10)
        board.add_trace(
            Trace(name="solo", path=Polyline([Point(1, 5), Point(9, 5)]), width=1.0)
        )
        assert_reports_identical(board)
