"""Unit tests for the DRC engine — the library's correctness oracle."""

import math

import pytest

from repro.drc import (
    ViolationKind,
    check_board,
    check_containment,
    check_endpoints_preserved,
    check_obstacle_clearance,
    check_pair_coupling,
    check_segment_lengths,
    check_self_clearance,
    check_trace_pair_clearance,
    segments_parallel_conflict,
)
from repro.geometry import Point, Polyline, Segment, rectangle
from repro.model import Board, DesignRules, DifferentialPair, Trace, via


RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def trace_of(*pts, name="t", width=1.0) -> Trace:
    return Trace(name, Polyline([Point(x, y) for x, y in pts]), width=width)


class TestSegmentLengths:
    def test_clean(self):
        rep = check_segment_lengths(trace_of((0, 0), (10, 0)), RULES)
        assert rep.is_clean()

    def test_short_segment_flagged(self):
        rep = check_segment_lengths(trace_of((0, 0), (1, 0), (10, 0)), RULES)
        assert len(rep.of_kind(ViolationKind.SHORT_SEGMENT)) == 1

    def test_exact_length_passes(self):
        rep = check_segment_lengths(trace_of((0, 0), (2, 0), (10, 0)), RULES)
        assert rep.is_clean()

    def test_violation_carries_measurements(self):
        rep = check_segment_lengths(trace_of((0, 0), (0.5, 0), (10, 0)), RULES)
        v = rep.violations[0]
        assert math.isclose(v.measured, 0.5) and v.required == 2.0
        assert v.margin() > 0


class TestParallelConflict:
    def test_parallel_overlapping_close(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(2, 1), Point(8, 1))
        assert segments_parallel_conflict(a, b, required=2.0)

    def test_parallel_far_apart(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(0, 5), Point(10, 5))
        assert not segments_parallel_conflict(a, b, required=2.0)

    def test_perpendicular_exempt(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0.5), Point(5, 10))
        assert not segments_parallel_conflict(a, b, required=2.0)

    def test_collinear_no_overlap_exempt(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(5, 0), Point(9, 0))
        assert not segments_parallel_conflict(a, b, required=2.0)

    def test_antiparallel_counts(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(8, 1), Point(2, 1))
        assert segments_parallel_conflict(a, b, required=2.0)


class TestSelfClearance:
    def test_legal_serpentine_clean(self):
        # Pattern legs 2 apart (= d_protect), tops fine.
        t = trace_of((0, 0), (4, 0), (4, 5), (6, 5), (6, 0), (10, 0))
        assert check_self_clearance(t, RULES).is_clean()

    def test_crossing_copper_flagged(self):
        t = trace_of((0, 0), (10, 0), (10, 5), (0.5, 5), (0.5, 0.5), (9, 0.5))
        rep = check_self_clearance(t, RULES)
        assert len(rep.of_kind(ViolationKind.SELF_CLEARANCE)) >= 1

    def test_custom_floor(self):
        # Two parallel runs 3 apart: fine at the d_protect floor, flagged
        # when the caller demands d_gap.
        t = trace_of((0, 0), (10, 0), (10, 3), (0, 3), (0, 6), (10, 6))
        assert check_self_clearance(t, RULES).is_clean()
        rep = check_self_clearance(t, RULES, required=RULES.dgap + 1.0)
        assert not rep.is_clean()


class TestTracePairClearance:
    def test_far_apart_clean(self):
        a = trace_of((0, 0), (10, 0), name="a")
        b = trace_of((0, 10), (10, 10), name="b")
        assert check_trace_pair_clearance(a, b, RULES).is_clean()

    def test_too_close_flagged(self):
        a = trace_of((0, 0), (10, 0), name="a")
        b = trace_of((0, 3), (10, 3), name="b")
        rep = check_trace_pair_clearance(a, b, RULES)
        assert len(rep.of_kind(ViolationKind.TRACE_CLEARANCE)) == 1

    def test_exactly_at_rule_passes(self):
        a = trace_of((0, 0), (10, 0), name="a", width=1.0)
        b = trace_of((0, 5), (10, 5), name="b", width=1.0)  # 4 + 0.5 + 0.5
        assert check_trace_pair_clearance(a, b, RULES).is_clean()


class TestObstacleClearance:
    def test_clear(self):
        t = trace_of((0, 0), (20, 0))
        rep = check_obstacle_clearance(t, [via(Point(10, 10), 1.0)], RULES)
        assert rep.is_clean()

    def test_too_close(self):
        t = trace_of((0, 0), (20, 0))
        rep = check_obstacle_clearance(t, [via(Point(10, 2.0), 1.0)], RULES)
        assert len(rep.of_kind(ViolationKind.OBSTACLE_CLEARANCE)) == 1

    def test_required_includes_width(self):
        t = trace_of((0, 0), (20, 0), width=2.0)
        rep = check_obstacle_clearance(t, [via(Point(10, 3.5), 1.0)], RULES)
        # clearance = 3.5 - 1.0 = 2.5 < d_obs + w/2 = 3.0
        assert not rep.is_clean()


class TestContainmentAndEndpoints:
    def test_containment_ok(self):
        t = trace_of((1, 1), (9, 1))
        assert check_containment(t, rectangle(0, 0, 10, 10)).is_clean()

    def test_escape_flagged(self):
        t = trace_of((1, 1), (12, 1))
        rep = check_containment(t, rectangle(0, 0, 10, 10))
        assert len(rep.of_kind(ViolationKind.OUTSIDE_AREA)) == 1

    def test_endpoints_preserved(self):
        before = trace_of((0, 0), (10, 0))
        after = trace_of((0, 0), (5, 0), (5, 2), (7, 2), (7, 0), (10, 0))
        assert check_endpoints_preserved(before, after).is_clean()

    def test_endpoint_moved_flagged(self):
        before = trace_of((0, 0), (10, 0))
        after = trace_of((0, 0), (10, 1))
        rep = check_endpoints_preserved(before, after)
        assert len(rep.of_kind(ViolationKind.ENDPOINT_MOVED)) == 1


class TestPairCoupling:
    def test_coupled_clean(self):
        p = trace_of((0, 1), (50, 1), name="d_P", width=0.6)
        n = trace_of((0, -1), (50, -1), name="d_N", width=0.6)
        pair = DifferentialPair("d", p, n, rule=2.0)
        assert check_pair_coupling(pair, max_deviation=0.1).is_clean()

    def test_decoupled_flagged(self):
        p = trace_of((0, 1), (50, 1), name="d_P", width=0.6)
        n = trace_of((0, -1), (25, -1), (30, -4), (35, -1), (50, -1), name="d_N", width=0.6)
        pair = DifferentialPair("d", p, n, rule=2.0)
        rep = check_pair_coupling(pair, max_deviation=0.5)
        assert len(rep.of_kind(ViolationKind.PAIR_DECOUPLED)) == 1


class TestBoardCheck:
    def test_clean_board(self):
        board = Board.with_rect_outline(0, 0, 100, 100, RULES)
        board.add_trace(trace_of((5, 10), (95, 10), name="a"))
        board.add_trace(trace_of((5, 30), (95, 30), name="b"))
        assert check_board(board).is_clean()

    def test_detects_cross_trace_violation(self):
        board = Board.with_rect_outline(0, 0, 100, 100, RULES)
        board.add_trace(trace_of((5, 10), (95, 10), name="a"))
        board.add_trace(trace_of((5, 12), (95, 12), name="b"))
        assert not check_board(board).is_clean()

    def test_pair_members_exempt_from_dgap(self):
        board = Board.with_rect_outline(0, 0, 100, 100, RULES)
        p = trace_of((5, 11), (95, 11), name="d_P", width=0.6)
        n = trace_of((5, 9), (95, 9), name="d_N", width=0.6)
        board.add_pair(DifferentialPair("d", p, n, rule=2.0))
        assert check_board(board).is_clean()

    def test_respects_routable_area(self):
        board = Board.with_rect_outline(0, 0, 100, 100, RULES)
        board.add_trace(trace_of((5, 10), (95, 10), name="a"))
        board.set_routable_area("a", rectangle(0, 0, 50, 50))
        rep = check_board(board)
        assert len(rep.of_kind(ViolationKind.OUTSIDE_AREA)) == 1

    def test_report_formatting(self):
        board = Board.with_rect_outline(0, 0, 100, 100, RULES)
        board.add_trace(trace_of((5, 10), (95, 10), name="a"))
        board.add_trace(trace_of((5, 12), (95, 12), name="b"))
        rep = check_board(board)
        assert "trace_clearance" in str(rep)
