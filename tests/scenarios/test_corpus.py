"""Corpus runner tests: aggregation, gating, artifacts, parallel path,
crash isolation and resume."""

import os

import pytest

from repro.io import load_board, load_corpus_case, load_corpus_report
from repro.scenarios import CORPUS_GATE, run_corpus
from repro.scenarios.registry import ScenarioFamily, _REGISTRY, register


def _poison_builder(rng, length=100.0):
    """A board whose default pipeline crashes: the group member's path
    is a single zero-length segment (ZeroDivisionError in the router)."""
    from repro import Board, DesignRules, MatchGroup, Point, Polyline, Trace

    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0, 0, 100, 40, rules)
    trace = board.add_trace(
        Trace("bad", Polyline([Point(5, 20), Point(5, 20)]), width=1.0)
    )
    board.add_group(MatchGroup("g", members=[trace], target_length=length))
    return board


@pytest.fixture
def poison_scenario():
    """A temporarily-registered feasible-tagged scenario that crashes."""
    name = "_test_poison"
    register(
        ScenarioFamily(
            name=name,
            builder=_poison_builder,
            description="crash injector for corpus isolation tests",
            difficulty="easy",
            feasible=True,
            defaults=dict(length=100.0),
            tags=("test",),
        )
    )
    try:
        yield name
    finally:
        _REGISTRY.pop(name, None)


@pytest.mark.smoke
def test_quick_corpus_passes_gate(tmp_path):
    outdir = str(tmp_path / "corpus")
    report = run_corpus(quick=True, outdir=outdir)

    summary = report["summary"]
    assert summary["gate_passed"], summary
    assert summary["feasible_success_rate"] >= CORPUS_GATE
    assert summary["boards"] >= 10  # >= 5 families x 2 seeds

    # Every case row is self-describing: provenance names the exact
    # (scenario, seed, params) recipe that rebuilds its board.
    for aggregate in report["scenarios"]:
        assert aggregate["boards"] == len(aggregate["cases"])
        assert 0 <= aggregate["ok"] <= aggregate["boards"]
        for case in aggregate["cases"]:
            prov = case["provenance"]
            assert prov["name"] == aggregate["scenario"]
            assert case["board"] == f"{prov['name']}-s{prov['seed']}"

    # The aggregate report landed on disk and round-trips through io.
    loaded = load_corpus_report(os.path.join(outdir, "corpus_report.json"))
    assert loaded["summary"] == summary


def test_corpus_subset_and_board_artifacts(tmp_path):
    outdir = str(tmp_path / "corpus")
    report = run_corpus(
        scenarios=["serpentine_bus"],
        seeds=(0, 1),
        quick=False,
        outdir=outdir,
        save_boards=True,
    )
    assert [a["scenario"] for a in report["scenarios"]] == ["serpentine_bus"]
    board = load_board(os.path.join(outdir, "boards", "serpentine_bus-s1.json"))
    assert board.meta["scenario"]["seed"] == 1
    # Saved artifacts are the pristine *inputs* (pre-route), so a failing
    # workload replays: byte-identical to regenerating from provenance.
    from repro.io import board_to_json
    from repro.scenarios import generate

    assert board_to_json(board) == board_to_json(
        generate("serpentine_bus", seed=1)
    )


def test_corpus_parallel_workers_match_serial():
    kwargs = dict(scenarios=["serpentine_bus", "obstacle_maze"], seeds=(0, 1))
    serial = run_corpus(workers=None, **kwargs)
    parallel = run_corpus(workers=2, **kwargs)
    # Timings differ between runs; outcomes and provenance must not.
    for a_serial, a_parallel in zip(serial["scenarios"], parallel["scenarios"]):
        assert a_serial["ok"] == a_parallel["ok"]
        assert a_serial["max_error_max"] == a_parallel["max_error_max"]
        for c_serial, c_parallel in zip(a_serial["cases"], a_parallel["cases"]):
            assert c_serial["provenance"] == c_parallel["provenance"]
            assert c_serial["ok"] == c_parallel["ok"]


def test_save_boards_requires_outdir():
    with pytest.raises(ValueError, match="outdir"):
        run_corpus(scenarios=["obstacle_maze"], seeds=(0,), save_boards=True)


def test_wrong_kind_document_rejected(tmp_path):
    """A same-versioned board/result JSON must not load as a corpus report."""
    from repro.io import save_board
    from repro.scenarios import generate

    path = str(tmp_path / "board.json")
    save_board(generate("obstacle_maze", seed=0), path)
    with pytest.raises(ValueError, match="not a corpus report"):
        load_corpus_report(path)


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        run_corpus(scenarios=["nope"])


def test_duplicate_scenario_names_deduped():
    report = run_corpus(scenarios=["obstacle_maze", "obstacle_maze"], seeds=(0,))
    assert [a["scenario"] for a in report["scenarios"]] == ["obstacle_maze"]
    assert report["summary"]["boards"] == 1
    assert report["summary"]["feasible_boards"] == 1


def test_duplicate_seeds_deduped():
    report = run_corpus(scenarios=["obstacle_maze"], seeds=(0, 0, 1))
    assert report["summary"]["boards"] == 2
    assert report["seeds"] == [0, 1]


class TestCrashIsolation:
    def test_crashed_case_becomes_gated_row(self, poison_scenario, tmp_path):
        outdir = str(tmp_path / "corpus")
        report = run_corpus(
            scenarios=["serpentine_bus", poison_scenario],
            seeds=(0,),
            outdir=outdir,
        )
        # The sweep completed and the report landed despite the crash.
        loaded = load_corpus_report(os.path.join(outdir, "corpus_report.json"))
        assert loaded["summary"] == report["summary"]
        summary = report["summary"]
        assert summary["boards"] == 2
        assert summary["crashed"] == 1
        # Both scenarios are feasible-tagged, so the crash gates the run.
        assert summary["feasible_success_rate"] == 0.5
        assert not summary["gate_passed"]
        poison_agg = next(
            a for a in report["scenarios"] if a["scenario"] == poison_scenario
        )
        case = poison_agg["cases"][0]
        assert case["status"] == "crashed"
        assert not case["ok"]
        assert case["error"]["type"] == "ZeroDivisionError"

    def test_crashed_case_isolated_in_workers_mode(self, poison_scenario):
        report = run_corpus(
            scenarios=["serpentine_bus", poison_scenario],
            seeds=(0, 1),
            workers=2,
        )
        assert report["workers"] == 2
        assert report["summary"]["crashed"] == 2
        good = next(
            a for a in report["scenarios"] if a["scenario"] == "serpentine_bus"
        )
        assert good["ok"] == good["boards"]


class TestCaseArtifactsAndResume:
    def test_per_case_result_artifacts_written(self, tmp_path):
        outdir = str(tmp_path / "corpus")
        report = run_corpus(
            scenarios=["serpentine_bus"], seeds=(0, 1), outdir=outdir
        )
        results_dir = os.path.join(outdir, "results")
        names = sorted(os.listdir(results_dir))
        assert names == ["serpentine_bus-s0.json", "serpentine_bus-s1.json"]
        case, result = load_corpus_case(os.path.join(results_dir, names[0]))
        assert case["board"] == "serpentine_bus-s0"
        assert result.status == "ok"
        # The stored row is the report row.
        stored_rows = report["scenarios"][0]["cases"]
        assert case == stored_rows[0]

    def test_resume_skips_completed_cases(self, tmp_path):
        outdir = str(tmp_path / "corpus")
        first = run_corpus(
            scenarios=["serpentine_bus"], seeds=(0, 1), outdir=outdir
        )
        # Drop one artifact: resume must re-route exactly that case.
        os.remove(os.path.join(outdir, "results", "serpentine_bus-s1.json"))
        resumed = run_corpus(
            scenarios=["serpentine_bus"], seeds=(0, 1), outdir=outdir, resume=True
        )
        assert resumed["summary"]["resumed"] == 1
        assert resumed["summary"]["boards"] == 2
        assert resumed["summary"]["ok"] == first["summary"]["ok"]
        assert resumed["summary"]["gate_passed"] == first["summary"]["gate_passed"]
        # The re-routed case's artifact is back on disk.
        assert sorted(os.listdir(os.path.join(outdir, "results"))) == [
            "serpentine_bus-s0.json",
            "serpentine_bus-s1.json",
        ]
        # Fully-covered resume routes nothing and reports identically.
        full = run_corpus(
            scenarios=["serpentine_bus"], seeds=(0, 1), outdir=outdir, resume=True
        )
        assert full["summary"]["resumed"] == 2
        assert full["summary"]["ok"] == first["summary"]["ok"]

    def test_resume_after_crash_keeps_crashed_row(self, poison_scenario, tmp_path):
        outdir = str(tmp_path / "corpus")
        run_corpus(
            scenarios=["serpentine_bus", poison_scenario],
            seeds=(0,),
            outdir=outdir,
        )
        resumed = run_corpus(
            scenarios=["serpentine_bus", poison_scenario],
            seeds=(0,),
            outdir=outdir,
            resume=True,
        )
        assert resumed["summary"]["resumed"] == 2
        assert resumed["summary"]["crashed"] == 1
        assert not resumed["summary"]["gate_passed"]

    def test_resume_requires_outdir(self):
        with pytest.raises(ValueError, match="resume"):
            run_corpus(scenarios=["obstacle_maze"], seeds=(0,), resume=True)

    def test_resume_skips_malformed_artifact_with_warning(self, tmp_path):
        import json

        outdir = str(tmp_path / "corpus")
        run_corpus(scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir)
        # A valid envelope whose case row lost its "board" key (e.g. a
        # truncated-then-rewritten artifact) must be re-routed, not
        # abort the resume.
        path = os.path.join(outdir, "results", "serpentine_bus-s0.json")
        with open(path) as fh:
            doc = json.load(fh)
        del doc["case"]["board"]
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(RuntimeWarning, match="unreadable case artifact"):
            resumed = run_corpus(
                scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir,
                resume=True,
            )
        assert resumed["summary"]["resumed"] == 0
        assert resumed["summary"]["boards"] == 1

    def test_resume_reroutes_cases_from_other_params(self, tmp_path):
        # Board names carry no params, so a full-run artifact must not
        # be adopted into a --quick report (different quick_overrides).
        outdir = str(tmp_path / "corpus")
        run_corpus(scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir)
        with pytest.warns(RuntimeWarning, match="different scenario parameters"):
            resumed = run_corpus(
                scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir,
                resume=True, quick=True,
            )
        assert resumed["summary"]["resumed"] == 0
        case = resumed["scenarios"][0]["cases"][0]
        # The re-routed row carries the quick params, not the full ones.
        assert case["provenance"]["params"]["traces"] == 3

    def test_resume_reroutes_cases_from_other_preset(self, tmp_path):
        outdir = str(tmp_path / "corpus")
        run_corpus(
            scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir,
            preset="fast",
        )
        with pytest.warns(RuntimeWarning, match="preset"):
            resumed = run_corpus(
                scenarios=["serpentine_bus"], seeds=(0,), outdir=outdir,
                resume=True, preset="quality",
            )
        # The fast-preset artifact was not adopted into a quality report.
        assert resumed["summary"]["resumed"] == 0
        assert resumed["preset"] == "quality"
        case = resumed["scenarios"][0]["cases"][0]
        assert case["ok"]


class TestEffectiveWorkers:
    def test_quick_drops_workers_with_warning(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="workers=4 ignored"):
            report = run_corpus(
                scenarios=["serpentine_bus"], seeds=(0, 1), quick=True, workers=4
            )
        # The report records what actually happened, not the request.
        assert report["workers"] == 1
        assert report["workers_requested"] == 4

    def test_effective_workers_recorded_for_parallel_run(self):
        report = run_corpus(
            scenarios=["serpentine_bus"], seeds=(0, 1), workers=2
        )
        assert report["workers"] == 2
        assert report["workers_requested"] == 2

    def test_serial_run_records_one_worker(self):
        report = run_corpus(scenarios=["serpentine_bus"], seeds=(0,))
        assert report["workers"] == 1
        assert report["workers_requested"] is None
