"""Corpus runner tests: aggregation, gating, artifacts, parallel path."""

import os

import pytest

from repro.io import load_board, load_corpus_report
from repro.scenarios import CORPUS_GATE, run_corpus


@pytest.mark.smoke
def test_quick_corpus_passes_gate(tmp_path):
    outdir = str(tmp_path / "corpus")
    report = run_corpus(quick=True, outdir=outdir)

    summary = report["summary"]
    assert summary["gate_passed"], summary
    assert summary["feasible_success_rate"] >= CORPUS_GATE
    assert summary["boards"] >= 10  # >= 5 families x 2 seeds

    # Every case row is self-describing: provenance names the exact
    # (scenario, seed, params) recipe that rebuilds its board.
    for aggregate in report["scenarios"]:
        assert aggregate["boards"] == len(aggregate["cases"])
        assert 0 <= aggregate["ok"] <= aggregate["boards"]
        for case in aggregate["cases"]:
            prov = case["provenance"]
            assert prov["name"] == aggregate["scenario"]
            assert case["board"] == f"{prov['name']}-s{prov['seed']}"

    # The aggregate report landed on disk and round-trips through io.
    loaded = load_corpus_report(os.path.join(outdir, "corpus_report.json"))
    assert loaded["summary"] == summary


def test_corpus_subset_and_board_artifacts(tmp_path):
    outdir = str(tmp_path / "corpus")
    report = run_corpus(
        scenarios=["serpentine_bus"],
        seeds=(0, 1),
        quick=False,
        outdir=outdir,
        save_boards=True,
    )
    assert [a["scenario"] for a in report["scenarios"]] == ["serpentine_bus"]
    board = load_board(os.path.join(outdir, "boards", "serpentine_bus-s1.json"))
    assert board.meta["scenario"]["seed"] == 1
    # Saved artifacts are the pristine *inputs* (pre-route), so a failing
    # workload replays: byte-identical to regenerating from provenance.
    from repro.io import board_to_json
    from repro.scenarios import generate

    assert board_to_json(board) == board_to_json(
        generate("serpentine_bus", seed=1)
    )


def test_corpus_parallel_workers_match_serial():
    kwargs = dict(scenarios=["serpentine_bus", "obstacle_maze"], seeds=(0, 1))
    serial = run_corpus(workers=None, **kwargs)
    parallel = run_corpus(workers=2, **kwargs)
    # Timings differ between runs; outcomes and provenance must not.
    for a_serial, a_parallel in zip(serial["scenarios"], parallel["scenarios"]):
        assert a_serial["ok"] == a_parallel["ok"]
        assert a_serial["max_error_max"] == a_parallel["max_error_max"]
        for c_serial, c_parallel in zip(a_serial["cases"], a_parallel["cases"]):
            assert c_serial["provenance"] == c_parallel["provenance"]
            assert c_serial["ok"] == c_parallel["ok"]


def test_save_boards_requires_outdir():
    with pytest.raises(ValueError, match="outdir"):
        run_corpus(scenarios=["obstacle_maze"], seeds=(0,), save_boards=True)


def test_wrong_kind_document_rejected(tmp_path):
    """A same-versioned board/result JSON must not load as a corpus report."""
    from repro.io import save_board
    from repro.scenarios import generate

    path = str(tmp_path / "board.json")
    save_board(generate("obstacle_maze", seed=0), path)
    with pytest.raises(ValueError, match="not a corpus report"):
        load_corpus_report(path)


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        run_corpus(scenarios=["nope"])


def test_duplicate_scenario_names_deduped():
    report = run_corpus(scenarios=["obstacle_maze", "obstacle_maze"], seeds=(0,))
    assert [a["scenario"] for a in report["scenarios"]] == ["obstacle_maze"]
    assert report["summary"]["boards"] == 1
    assert report["summary"]["feasible_boards"] == 1


def test_duplicate_seeds_deduped():
    report = run_corpus(scenarios=["obstacle_maze"], seeds=(0, 0, 1))
    assert report["summary"]["boards"] == 2
    assert report["seeds"] == [0, 1]
