"""Generator invariants, property-style over every registered family.

Three contracts hold for *any* registered scenario at *any* seed:

1. **Determinism** — the same ``(name, seed, params)`` yields
   byte-identical board JSON, twice and after an io round-trip;
2. **Structural sanity** — the pre-route board is DRC-clean, every
   polyline is non-degenerate, and all copper lies inside the outline
   (and inside its assigned routable area);
3. **Feasibility** — a feasible-tagged scenario routes to target and
   comes back DRC-clean under the default corpus preset.
"""

import pytest

from repro.api import RoutingSession
from repro.drc import check_board
from repro.geometry import polyline_inside_polygon
from repro.io import board_from_json, board_to_dict, board_to_json
from repro.scenarios import generate, list_scenarios

SEEDS = (0, 1, 7)

#: Every (family, seed) pair under test, small params for speed.
#: Families with required params (``imported`` needs a board file) are
#: file-driven, not seed-driven — they get their own suite under
#: tests/kicad/ instead of the generator property sweep.
CASES = [
    pytest.param(family, seed, id=f"{family.name}-s{seed}")
    for family in list_scenarios()
    if not family.requires
    for seed in SEEDS
]


def quick_board(family, seed):
    return generate(family.name, seed=seed, params=dict(family.quick_overrides))


def all_polylines(board):
    for trace in board.traces:
        yield trace.name, trace.path
    for pair in board.pairs:
        yield pair.trace_p.name, pair.trace_p.path
        yield pair.trace_n.name, pair.trace_n.path


@pytest.mark.parametrize("family,seed", CASES)
def test_generation_is_byte_deterministic(family, seed):
    first = board_to_json(quick_board(family, seed))
    second = board_to_json(quick_board(family, seed))
    assert first == second


@pytest.mark.parametrize("family,seed", CASES)
def test_board_roundtrips_through_io(family, seed):
    board = quick_board(family, seed)
    rebuilt = board_from_json(board_to_json(board))
    assert board_to_dict(rebuilt) == board_to_dict(board)
    assert rebuilt.meta == board.meta


@pytest.mark.parametrize("family,seed", CASES)
def test_pre_route_structural_sanity(family, seed):
    board = quick_board(family, seed)
    assert board.traces or board.pairs
    assert board.groups, "every scenario must pose a matching problem"
    for name, path in all_polylines(board):
        assert len(path) >= 2, f"{name}: degenerate polyline"
        assert path.min_segment_length() > 0.0, f"{name}: zero-length segment"
        assert polyline_inside_polygon(path, board.outline), (
            f"{name}: copper outside the outline"
        )
    for member_name, area in board.routable_areas.items():
        assert polyline_inside_polygon(
            _member_path(board, member_name), area
        ), f"{member_name}: initial path outside its routable area"
    report = check_board(board)
    assert report.is_clean(), f"pre-route violations:\n{report}"


def _member_path(board, member_name):
    for trace in board.traces:
        if trace.name == member_name:
            return trace.path
    pair = board.pair_by_name(member_name)
    # Either sub-trace works as the containment witness; P is arbitrary.
    return pair.trace_p.path


FEASIBLE_CASES = [
    pytest.param(family, seed, id=f"{family.name}-s{seed}")
    for family in list_scenarios(feasible_only=True)
    if not family.requires
    for seed in (0, 1)
]


@pytest.mark.parametrize("family,seed", FEASIBLE_CASES)
def test_feasible_scenarios_route_clean(family, seed):
    board = quick_board(family, seed)
    result = RoutingSession(board, config="fast").run()
    assert result.ok(), result.summary()
    assert result.drc is not None and result.drc.is_clean()
    assert result.provenance == board.meta["scenario"]
    for group in board.groups:
        assert group.is_matched(), f"group {group.name} missed target"


def test_tiled_scales_linearly():
    small = generate("tiled", seed=0, params={"tiles": 1})
    big = generate("tiled", seed=0, params={"tiles": 3})
    assert len(big.traces) == 3 * len(small.traces)
    assert len(big.groups) == 3 * len(small.groups)
    assert len(big.routable_areas) == 3 * len(small.routable_areas)


def test_different_seeds_differ():
    assert board_to_json(generate("serpentine_bus", seed=0)) != board_to_json(
        generate("serpentine_bus", seed=1)
    )
