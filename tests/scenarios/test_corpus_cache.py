"""Corpus sweeps over the content-addressed cache: a repeated sweep is
incremental far beyond ``--resume`` — the second run routes nothing."""

import os

import pytest

from repro.api import RoutingSession
from repro.cache import ResultCache
from repro.io import load_corpus_case
from repro.scenarios import run_corpus

KWARGS = dict(scenarios=["serpentine_bus"], seeds=(0, 1), quick=True)


@pytest.mark.smoke
def test_second_sweep_is_fully_cached_and_routes_nothing(
    tmp_path, monkeypatch
):
    cache_dir = str(tmp_path / "cache")
    first = run_corpus(cache=cache_dir, **KWARGS)
    assert first["summary"]["cached"] == 0
    assert first["cache"]["entries"] == 2  # both verdicts published

    # Second sweep: rip the executor out entirely.  Every case must be
    # served from the cache — a single routed board would raise.
    def boom(*args, **kwargs):
        raise AssertionError("executor invoked on a fully cached sweep")

    monkeypatch.setattr(RoutingSession, "run_many", boom)
    events = []
    second = run_corpus(cache=cache_dir, on_case=events.append, **KWARGS)

    summary = second["summary"]
    assert summary["cached"] == 2 and summary["boards"] == 2
    assert [e["board"] for e in events] == [
        "serpentine_bus-s0",
        "serpentine_bus-s1",
    ]
    # Cached verdicts and metrics are the produced ones, not recomputed
    # approximations.
    for a_first, a_second in zip(first["scenarios"], second["scenarios"]):
        assert a_second["ok"] == a_first["ok"]
        assert a_second["max_error_max"] == a_first["max_error_max"]
        for c_first, c_second in zip(a_first["cases"], a_second["cases"]):
            assert c_second["provenance"] == c_first["provenance"]
            assert c_second["ok"] == c_first["ok"]
            assert c_second["max_error"] == c_first["max_error"]
    assert second["cache"]["hits"] >= 2


def test_cached_sweep_still_writes_case_artifacts(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_corpus(cache=cache_dir, **KWARGS)
    outdir = str(tmp_path / "sweep")
    run_corpus(cache=cache_dir, outdir=outdir, **KWARGS)
    # Per-case artifacts land on disk even when every case was a cache
    # hit — downstream tooling reads files, not the cache.
    case, result = load_corpus_case(
        os.path.join(outdir, "results", "serpentine_bus-s0.json")
    )
    assert case["board"] == "serpentine_bus-s0"
    assert result.status in ("ok", "failed")


def test_live_cache_object_is_shared_and_counted(tmp_path):
    # The daemon hands its own ResultCache instance in; counters
    # accumulate across sweeps on that one object.
    cache = ResultCache(str(tmp_path / "cache"))
    first = run_corpus(cache=cache, **KWARGS)
    second = run_corpus(cache=cache, **KWARGS)
    assert second["summary"]["cached"] == 2
    assert second["cache"]["hits"] >= 2
    assert cache.stats()["entries"] == 2
    # Without a cache the report carries no cache block at all.
    assert "cache" not in run_corpus(**KWARGS)


def test_cache_composes_with_resume(tmp_path):
    # resume (outdir artifacts) wins for already-materialised cases;
    # the cache covers the rest; both short-circuit routing.
    cache_dir = str(tmp_path / "cache")
    run_corpus(cache=cache_dir, **KWARGS)  # publish both verdicts

    outdir = str(tmp_path / "sweep")
    run_corpus(  # materialise only s0's artifact in the sweep dir
        cache=cache_dir,
        outdir=outdir,
        scenarios=["serpentine_bus"],
        seeds=(0,),
        quick=True,
    )
    report = run_corpus(cache=cache_dir, outdir=outdir, resume=True, **KWARGS)
    summary = report["summary"]
    assert summary["boards"] == 2
    assert summary["resumed"] == 1  # s0 came from its artifact
    assert summary["cached"] == 1  # s1 came from the cache
    assert summary["gate_passed"]
