"""Catalogue contract tests for the scenario registry."""

import pytest

from repro.scenarios import (
    ScenarioFamily,
    ScenarioSpec,
    describe,
    generate,
    get,
    list_scenarios,
    register,
    scenario_names,
)


@pytest.mark.smoke
class TestCatalogue:
    def test_at_least_five_families(self):
        assert len(list_scenarios()) >= 5

    def test_names_sorted_and_consistent(self):
        names = scenario_names()
        assert names == sorted(names)
        assert [f.name for f in list_scenarios()] == names

    def test_every_family_is_tagged(self):
        for family in list_scenarios():
            assert family.difficulty in ("easy", "medium", "hard")
            assert isinstance(family.feasible, bool)
            assert family.description
            assert family.defaults  # parameterized, not hard-coded

    def test_feasible_only_filter(self):
        assert all(f.feasible for f in list_scenarios(feasible_only=True))

    def test_tag_filter(self):
        tagged = list_scenarios(tag="pairs")
        assert tagged and all("pairs" in f.tags for f in tagged)

    def test_get_unknown_lists_alternatives(self):
        with pytest.raises(KeyError, match="serpentine_bus"):
            get("nope")

    def test_describe_mentions_defaults(self):
        text = describe("serpentine_bus")
        assert "serpentine_bus" in text and "traces=" in text

    def test_register_rejects_duplicates(self):
        family = get("serpentine_bus")
        with pytest.raises(ValueError, match="already registered"):
            register(family)

    def test_register_rejects_unknown_difficulty(self):
        with pytest.raises(ValueError, match="difficulty"):
            register(
                ScenarioFamily(
                    name="bogus_difficulty",
                    builder=lambda rng: None,
                    description="x",
                    difficulty="impossible",
                    feasible=False,
                )
            )


class TestGenerate:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            generate("serpentine_bus", seed=0, params={"bogus": 1})

    def test_spec_and_kwargs_are_equivalent(self):
        from repro.io import board_to_json

        spec = ScenarioSpec("obstacle_maze", seed=5, params={"walls": 3})
        assert board_to_json(generate(spec)) == board_to_json(
            generate("obstacle_maze", seed=5, params={"walls": 3})
        )

    def test_spec_plus_kwargs_rejected(self):
        with pytest.raises(ValueError):
            generate(ScenarioSpec("serpentine_bus"), seed=1)

    def test_board_name_and_meta(self):
        board = generate("bga_escape", seed=9)
        assert board.name == "bga_escape-s9"
        prov = board.meta["scenario"]
        assert prov["name"] == "bga_escape" and prov["seed"] == 9
        # Effective params are fully materialised (defaults merged).
        assert prov["params"]["traces"] == 5

    def test_tiled_cannot_nest(self):
        with pytest.raises(ValueError, match="nest"):
            generate("tiled", seed=0, params={"base": "tiled"})

    def test_tiled_unknown_base_is_a_value_error(self):
        # ValueError, not KeyError: `base` is user input and must get the
        # same usage-error treatment as every other bad parameter.
        with pytest.raises(ValueError, match="unknown scenario"):
            generate("tiled", seed=0, params={"base": "nope"})

    def test_badly_typed_param_is_a_value_error(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            generate("serpentine_bus", seed=0, params={"traces": "abc"})

    def test_nested_param_order_is_normalised(self):
        from repro.io import board_to_json

        a = ScenarioSpec("tiled", 0, {"base_params": {"traces": 2, "length": 70.0}})
        b = ScenarioSpec("tiled", 0, {"base_params": {"length": 70.0, "traces": 2}})
        assert a == b
        assert board_to_json(generate(a)) == board_to_json(generate(b))

    def test_mutating_provenance_cannot_corrupt_the_catalogue(self):
        """Board.meta holds deep copies: poking at one board's provenance
        (or its nested dicts) must not leak into the frozen defaults or
        into boards generated later from the same spec."""
        from repro.io import board_to_json

        baseline = board_to_json(generate("tiled", seed=0))
        victim = generate("tiled", seed=0)
        victim.meta["scenario"]["params"]["base_params"]["traces"] = 1
        assert board_to_json(generate("tiled", seed=0)) == baseline


class TestSpec:
    def test_params_normalised_sorted(self):
        spec = ScenarioSpec("s", 1, {"b": 2, "a": 1})
        assert list(spec.params) == ["a", "b"]

    def test_roundtrip(self):
        spec = ScenarioSpec("serpentine_bus", 3, {"traces": 4})
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_tolerates_missing_fields(self):
        spec = ScenarioSpec.from_dict({"name": "x"})
        assert spec.seed == 0 and dict(spec.params) == {}

    def test_with_params_merges(self):
        spec = ScenarioSpec("x", 1, {"a": 1}).with_params(b=2)
        assert dict(spec.params) == {"a": 1, "b": 2}

    def test_to_dict_is_safe_to_mutate(self):
        spec = ScenarioSpec("tiled", 0, {"base_params": {"traces": 2}})
        original_hash = hash(spec)
        spec.to_dict()["params"]["base_params"]["traces"] = 99
        assert spec.params["base_params"]["traces"] == 2
        assert hash(spec) == original_hash

    def test_specs_are_hashable_even_with_nested_params(self):
        a = ScenarioSpec("tiled", 0, {"base_params": {"traces": 2}})
        b = ScenarioSpec("tiled", 0, {"base_params": {"traces": 2}})
        c = ScenarioSpec("tiled", 1, {"base_params": {"traces": 2}})
        assert len({a, b, c}) == 2 and hash(a) == hash(b)
