"""Unit tests for region assignment (Sec. III)."""

import math

import pytest

from repro.geometry import Point, Polyline, rectangle
from repro.model import Board, DesignRules, MatchGroup, Trace, rect_keepout
from repro.region import (
    Assignment,
    AssignmentInfeasible,
    apply_assignment,
    assign_regions,
    decompose,
    meander_pitch,
    required_area,
    trace_requirement,
)

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def simple_board(n_traces=2, pitch=20.0):
    board = Board.with_rect_outline(0, 0, 100, 20 + pitch * n_traces, RULES)
    traces = []
    for k in range(n_traces):
        t = board.add_trace(
            Trace(
                f"t{k}",
                Polyline([Point(5, 10 + k * pitch), Point(95, 10 + k * pitch)]),
                width=1.0,
            )
        )
        traces.append(t)
    return board, traces


class TestCapacity:
    def test_pitch_positive(self):
        assert meander_pitch(RULES, 1.0) > 0

    def test_required_area_zero_for_no_deficit(self):
        assert required_area(0.0, RULES, 1.0) == 0.0
        assert required_area(-5.0, RULES, 1.0) == 0.0

    def test_required_area_scales_linearly(self):
        a1 = required_area(10.0, RULES, 1.0)
        a2 = required_area(20.0, RULES, 1.0)
        assert math.isclose(a2, 2 * a1)

    def test_trace_requirement_uses_deficit(self):
        t = Trace("t", Polyline([Point(0, 0), Point(80, 0)]), width=1.0)
        assert trace_requirement(t, 100.0, RULES) == required_area(20.0, RULES, 1.0)

    def test_requirement_covers_real_meander(self):
        # The area model must over-estimate: a real meander of gain G fits
        # inside the predicted requirement.
        gain = 40.0
        req = required_area(gain, RULES, 1.0)
        # A serpentine achieving `gain` with amplitude h uses about
        # gain/2h legs of pitch p: area ~ (gain/2h) * p * h = gain*p/2.
        assert req >= gain * meander_pitch(RULES, 1.0) / 2.0


class TestDecompose:
    def test_grid_covers_board(self):
        board, traces = simple_board()
        deco = decompose(board, traces, cell=10.0)
        total = sum(r.area() for r in deco.regions)
        xmin, ymin, xmax, ymax = board.outline.bounds()
        assert math.isclose(total, (xmax - xmin) * (ymax - ymin), rel_tol=1e-9)

    def test_validates_cell(self):
        board, traces = simple_board()
        with pytest.raises(ValueError):
            decompose(board, traces, cell=0)

    def test_obstacles_reduce_capacity(self):
        board, traces = simple_board()
        board.add_obstacle(rect_keepout(40, 5, 50, 15))
        deco = decompose(board, traces, cell=10.0)
        blocked = [r for r in deco.regions if r.capacity < r.area() - 1e-9]
        assert blocked

    def test_neighbours_are_near_the_trace(self):
        board, traces = simple_board()
        deco = decompose(board, traces, cell=10.0, reach=12.0)
        for idx in deco.neighbours["t0"]:
            region = deco.region(idx)
            d = min(
                seg.distance_to_point(region.center())
                for seg in traces[0].segments()
            )
            assert d <= 12.0 + 1e-9

    def test_crossed_cells_identified(self):
        board, traces = simple_board()
        deco = decompose(board, traces, cell=10.0)
        crossed = [r for r in deco.regions if "t0" in r.crossed_by]
        assert len(crossed) >= 9  # the trace spans ~9 cells


class TestAssignment:
    def test_feasible_assignment(self):
        board, traces = simple_board()
        targets = {t.name: 120.0 for t in traces}
        assignment = assign_regions(board, traces, targets, cell=10.0)
        for t in traces:
            got = sum(
                amount
                for (ridx, name), amount in assignment.usage.items()
                if name == t.name
            )
            assert got >= assignment.requirements[t.name] - 1e-6

    def test_infeasible_when_board_too_small(self):
        board = Board.with_rect_outline(0, 0, 30, 8, RULES)
        t = board.add_trace(
            Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
        )
        with pytest.raises(AssignmentInfeasible):
            assign_regions(board, [t], {"t0": 2000.0}, cell=5.0)

    def test_cells_disjoint_across_traces(self):
        board, traces = simple_board()
        targets = {t.name: 130.0 for t in traces}
        assignment = assign_regions(board, traces, targets, cell=10.0)
        seen = set()
        for name, idxs in assignment.cells.items():
            for idx in idxs:
                assert idx not in seen
                seen.add(idx)

    def test_crossed_cells_pinned_to_owner(self):
        board, traces = simple_board()
        targets = {t.name: 120.0 for t in traces}
        assignment = assign_regions(board, traces, targets, cell=10.0)
        for region in assignment.decomposition.regions:
            if region.crossed_by == ("t0",):
                assert region.index in assignment.cells["t0"]

    def test_apply_assignment_sets_areas(self):
        board, traces = simple_board()
        targets = {t.name: 120.0 for t in traces}
        assignment = assign_regions(board, traces, targets, cell=10.0)
        apply_assignment(board, assignment)
        for t in traces:
            area = board.routable_areas[t.name]
            mid = t.path.point_at_arclength(t.length() / 2)
            assert area.contains_point(mid)

    def test_routable_polygons_have_positive_area(self):
        board, traces = simple_board()
        targets = {t.name: 120.0 for t in traces}
        assignment = assign_regions(board, traces, targets, cell=10.0)
        polys = assignment.routable_polygons()
        for t in traces:
            assert polys[t.name]
            assert sum(p.area() for p in polys[t.name]) > 0


class TestEndToEnd:
    def test_assignment_enables_matching(self):
        from repro.core import LengthMatchingRouter
        from repro.drc import check_board

        board, traces = simple_board()
        group = MatchGroup("g", members=list(traces), target_length=120.0)
        board.add_group(group)
        assignment = assign_regions(
            board, traces, {t.name: 120.0 for t in traces}, cell=10.0
        )
        apply_assignment(board, assignment)
        report = LengthMatchingRouter(board).match_group(group)
        assert report.max_error() <= 1e-5
        assert check_board(board).is_clean()
